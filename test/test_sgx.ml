(* SGX model tests: EPC accounting, enclave lifecycle and measurement,
   the SGX1 post-EINIT restriction, AEX/SSA, and local attestation. *)

open Occlum_sgx
open Occlum_machine

let page = 4096

let test_epc_accounting () =
  let epc = Epc.create ~size:(16 * page) () in
  Alcotest.(check int) "all free" 16 (Epc.free_pages epc);
  Epc.alloc epc ~pages:10;
  Alcotest.(check int) "used" 10 (Epc.used_pages epc);
  Epc.release epc ~pages:4;
  Alcotest.(check int) "released" 10 (Epc.free_pages epc);
  Alcotest.check_raises "oom" Epc.Out_of_epc (fun () -> Epc.alloc epc ~pages:11);
  Alcotest.check_raises "over-release" (Invalid_argument "Epc.release") (fun () ->
      Epc.release epc ~pages:100)

let build_enclave ?(content = "hello enclave") () =
  let epc = Epc.create ~size:(64 * page) () in
  let e = Enclave.create ~epc ~size:(8 * page) () in
  let data = Bytes.make page ' ' in
  Bytes.blit_string content 0 data 0 (String.length content);
  Enclave.add_pages e ~addr:0 ~data ~perm:Mem.perm_rx;
  Enclave.add_zero_pages e ~addr:page ~len:page ~perm:Mem.perm_rw;
  Enclave.init e;
  (epc, e)

let test_measurement_deterministic () =
  let _, e1 = build_enclave () in
  let _, e2 = build_enclave () in
  Alcotest.(check string) "same content, same measurement"
    (Occlum_util.Sha256.to_hex (Enclave.measurement e1))
    (Occlum_util.Sha256.to_hex (Enclave.measurement e2))

let test_measurement_sensitive () =
  let _, e1 = build_enclave () in
  let _, e2 = build_enclave ~content:"Hello enclave" () in
  Alcotest.(check bool) "different content, different measurement" true
    (Enclave.measurement e1 <> Enclave.measurement e2)

let test_sgx1_restriction () =
  let _, e = build_enclave () in
  Alcotest.(check bool) "initialized" true (Enclave.initialized e);
  (try
     Enclave.add_pages e ~addr:(2 * page) ~data:(Bytes.make page 'x')
       ~perm:Mem.perm_rw;
     Alcotest.fail "add_pages after EINIT must raise"
   with Enclave.Sgx1_restriction _ -> ());
  (try
     Enclave.remap e ~addr:0 ~len:page ~perm:Mem.perm_rwx;
     Alcotest.fail "remap after EINIT must raise"
   with Enclave.Sgx1_restriction _ -> ())

let test_measure_before_init () =
  let epc = Epc.create ~size:(64 * page) () in
  let e = Enclave.create ~epc ~size:(8 * page) () in
  Alcotest.check_raises "no measurement before EINIT"
    (Invalid_argument "measurement: enclave not initialized") (fun () ->
      ignore (Enclave.measurement e))

let test_destroy_releases_epc () =
  let epc = Epc.create ~size:(64 * page) () in
  let e = Enclave.create ~epc ~size:(8 * page) () in
  Alcotest.(check int) "consumed" 8 (Epc.used_pages epc);
  Enclave.init e;
  Enclave.destroy e;
  Alcotest.(check int) "released" 0 (Epc.used_pages epc);
  (* destroy is idempotent: a second teardown is a no-op, not a
     double-release into the pool *)
  Enclave.destroy e;
  Alcotest.(check int) "still released" 0 (Epc.used_pages epc)

let test_aex_restores_bounds () =
  (* §2.3: bound registers are saved on AEX and restored on resume *)
  let _, e = build_enclave () in
  let cpu = Cpu.create () in
  Cpu.set_bnd cpu Occlum_isa.Reg.bnd0 { lower = 10L; upper = 20L };
  Cpu.set cpu Occlum_isa.Reg.r1 77L;
  Enclave.aex e cpu;
  (* the OS scribbles over everything while we're out *)
  Cpu.set_bnd cpu Occlum_isa.Reg.bnd0 { lower = 0L; upper = 0L };
  Cpu.set cpu Occlum_isa.Reg.r1 0L;
  Enclave.resume e cpu;
  Alcotest.(check bool) "bnd0 restored" true
    (Cpu.get_bnd cpu Occlum_isa.Reg.bnd0 = { Cpu.lower = 10L; upper = 20L });
  Alcotest.(check int64) "gpr restored" 77L (Cpu.get cpu Occlum_isa.Reg.r1);
  Alcotest.check_raises "resume without aex"
    (Invalid_argument "resume: no saved state in SSA") (fun () ->
      Enclave.resume e cpu)

let test_aex_full_bit_identity () =
  (* §2.3 orderliness: EVERY piece of architectural state — all GPRs,
     all four MPX bound registers, the pc and the comparison flags —
     must survive an aex/resume round trip bit-identically, no matter
     what the host scribbles in between *)
  let _, e = build_enclave () in
  let cpu = Cpu.create () in
  for i = 0 to Occlum_isa.Reg.count - 1 do
    Cpu.set cpu (Occlum_isa.Reg.of_int i) (Int64.of_int ((i * 7919) + 13))
  done;
  for i = 0 to Occlum_isa.Reg.bnd_count - 1 do
    Cpu.set_bnd cpu
      (Occlum_isa.Reg.bnd_of_int i)
      { Cpu.lower = Int64.of_int (i * 11); upper = Int64.of_int ((i * 11) + 5) }
  done;
  cpu.Cpu.pc <- 0x1234;
  cpu.Cpu.flag_eq <- true;
  cpu.Cpu.flag_lt <- false;
  let regs = Array.copy cpu.Cpu.regs and bnds = Array.copy cpu.Cpu.bnds in
  Enclave.aex ~reason:"test" e cpu;
  for i = 0 to Occlum_isa.Reg.count - 1 do
    Cpu.set cpu (Occlum_isa.Reg.of_int i) (-1L)
  done;
  for i = 0 to Occlum_isa.Reg.bnd_count - 1 do
    Cpu.set_bnd cpu
      (Occlum_isa.Reg.bnd_of_int i)
      { Cpu.lower = -1L; upper = -1L }
  done;
  cpu.Cpu.pc <- 0;
  cpu.Cpu.flag_eq <- false;
  cpu.Cpu.flag_lt <- true;
  Enclave.resume e cpu;
  Alcotest.(check bool) "all GPRs restored" true (cpu.Cpu.regs = regs);
  Alcotest.(check bool) "all bound registers restored" true
    (cpu.Cpu.bnds = bnds);
  Alcotest.(check int) "pc restored" 0x1234 cpu.Cpu.pc;
  Alcotest.(check bool) "flag_eq restored" true cpu.Cpu.flag_eq;
  Alcotest.(check bool) "flag_lt restored" false cpu.Cpu.flag_lt

let test_epc_failure_mid_build () =
  (* regression: EADD running the EPC dry halfway through enclave
     construction must leave the pool balanced and the partial enclave
     queryable; destroy must give back exactly what was charged *)
  let epc = Epc.create ~size:(64 * page) () in
  let calls = ref 0 in
  Epc.set_alloc_hook
    (Some
       (fun ~pages:_ ->
         incr calls;
         if !calls = 3 then begin
           Epc.set_alloc_hook None;
           raise Epc.Out_of_epc
         end));
  Fun.protect
    ~finally:(fun () -> Epc.set_alloc_hook None)
    (fun () ->
      let e = Enclave.create ~version:Enclave.Sgx2 ~epc ~size:(16 * page) () in
      Enclave.add_pages e ~addr:0 ~data:(Bytes.make page 'c')
        ~perm:Mem.perm_rx;
      Alcotest.check_raises "EADD hits the dry pool" Epc.Out_of_epc (fun () ->
          Enclave.add_zero_pages e ~addr:page ~len:page ~perm:Mem.perm_rw);
      Alcotest.(check int) "only the committed page is charged" 1
        (Epc.used_pages epc);
      Alcotest.(check int) "pool stays balanced" 64
        (Epc.free_pages epc + Epc.used_pages epc);
      Alcotest.(check bool) "partial enclave is queryable" true
        (Enclave.id e > 0);
      Alcotest.(check bool) "partial enclave never initialized" false
        (Enclave.initialized e);
      Enclave.destroy e;
      Alcotest.(check int) "destroy restores the pool exactly" 64
        (Epc.free_pages epc))

let test_attestation () =
  let _, parent = build_enclave () in
  let _, child = build_enclave ~content:"other" () in
  let r = Attestation.report ~enclave:parent ~user_data:"nonce1" in
  Alcotest.(check bool) "report verifies" true (Attestation.verify r);
  let bad = { r with Attestation.body = r.Attestation.body ^ "x" } in
  Alcotest.(check bool) "tampered report rejected" false (Attestation.verify bad);
  (match Attestation.handshake ~parent ~child ~nonce:"n0" with
  | Ok key -> Alcotest.(check int) "session key size" 32 (String.length key)
  | Error m -> Alcotest.fail m);
  (* handshakes with different nonces derive different keys *)
  match
    ( Attestation.handshake ~parent ~child ~nonce:"n1",
      Attestation.handshake ~parent ~child ~nonce:"n2" )
  with
  | Ok k1, Ok k2 -> Alcotest.(check bool) "distinct keys" true (k1 <> k2)
  | _ -> Alcotest.fail "handshake failed"

let test_sgx2_edmm () =
  let epc = Epc.create ~size:(64 * page) () in
  let e = Enclave.create ~version:Enclave.Sgx2 ~epc ~size:(32 * page) () in
  (* SGX2 reserves address space without committing EPC *)
  Alcotest.(check int) "no EPC at create" 0 (Epc.used_pages epc);
  Enclave.add_pages e ~addr:0 ~data:(Bytes.make page 'c') ~perm:Mem.perm_rx;
  Alcotest.(check int) "EPC per page" 1 (Epc.used_pages epc);
  Enclave.init e;
  (* dynamic commit after EINIT *)
  Enclave.eaug e ~addr:(4 * page) ~len:(2 * page) ~perm:Mem.perm_rw;
  Alcotest.(check int) "EAUG charged" 3 (Epc.used_pages epc);
  Mem.write_u64_priv (Enclave.mem e) (4 * page) 7L;
  Enclave.eremove_pages e ~addr:(4 * page) ~len:(2 * page);
  Alcotest.(check int) "pages returned" 1 (Epc.used_pages epc);
  Alcotest.(check bool) "unmapped again" true
    (Mem.perm_at (Enclave.mem e) (4 * page) = None);
  (* re-EAUG: the page must come back zeroed *)
  Enclave.eaug e ~addr:(4 * page) ~len:page ~perm:Mem.perm_rw;
  Alcotest.(check int64) "zeroed" 0L (Mem.read_u64_priv (Enclave.mem e) (4 * page))

let test_sgx1_has_no_edmm () =
  let _, e = build_enclave () in
  (try
     Enclave.eaug e ~addr:(4 * page) ~len:page ~perm:Mem.perm_rw;
     Alcotest.fail "eaug on SGX1 must raise"
   with Enclave.Sgx1_restriction _ -> ());
  try
    Enclave.eremove_pages e ~addr:0 ~len:page;
    Alcotest.fail "eremove on SGX1 must raise"
  with Enclave.Sgx1_restriction _ -> ()

(* --- EPC demand paging --------------------------------------------------- *)

let paged_enclave ~pool_pages ~data_pages =
  let epc = Epc.create ~size:(pool_pages * page) () in
  Epc.enable_paging epc;
  let e = Enclave.create ~epc ~size:(16 * page) () in
  let pat i = Bytes.make page (Char.chr (0x30 + i)) in
  for i = 0 to data_pages - 1 do
    Enclave.add_pages e ~addr:(i * page) ~data:(pat i) ~perm:Mem.perm_rw
  done;
  Enclave.init e;
  (epc, e, pat)

let test_paging_zfod_and_evict_reload () =
  let epc = Epc.create ~size:(8 * page) () in
  Epc.enable_paging epc;
  let e = Enclave.create ~epc ~size:(16 * page) () in
  (* ZFOD: ECREATE commits nothing; pages are charged at first touch *)
  Alcotest.(check int) "nothing committed at ECREATE" 0 (Epc.used_pages epc);
  let pat i = Bytes.make page (Char.chr (0x30 + i)) in
  for i = 0 to 5 do
    Enclave.add_pages e ~addr:(i * page) ~data:(pat i) ~perm:Mem.perm_rw
  done;
  Enclave.init e;
  Alcotest.(check int) "committed on touch" 6 (Epc.used_pages epc);
  let cid = Enclave.id e in
  Alcotest.(check bool) "evict" true (Epc.evict_page epc ~cid ~page:3);
  Alcotest.(check int) "frame freed" 5 (Epc.used_pages epc);
  Alcotest.(check int) "sealed copy written" 1 (Epc.backing_used epc);
  Alcotest.(check bool) "page non-resident" false
    (Mem.page_resident (Enclave.mem e) 3);
  Epc.eldu epc ~cid ~page:3;
  Alcotest.(check bytes) "reload bit-identical" (pat 3)
    (Mem.read_bytes_priv (Enclave.mem e) ~addr:(3 * page) ~len:page);
  (match Epc.paging_stats epc with
  | Some s ->
      Alcotest.(check int) "one ewb" 1 s.Epc.ewb;
      Alcotest.(check int) "one eldu" 1 s.Epc.eldu;
      Alcotest.(check bool) "reload work charged" true (s.Epc.paging_cycles > 0)
  | None -> Alcotest.fail "paging stats missing");
  Enclave.destroy e;
  Enclave.destroy e (* idempotent under paging too *);
  Alcotest.(check int) "all frames returned" 0 (Epc.used_pages epc);
  Alcotest.(check int) "backing store drained" 0 (Epc.backing_used epc)

let test_paging_pressure_overcommit () =
  (* a working set twice the pool: the reclaimer pages in and out
     transparently through the privileged accessors, bit-identically *)
  let epc, e, pat = paged_enclave ~pool_pages:6 ~data_pages:12 in
  Alcotest.(check bool) "pool capped" true (Epc.used_pages epc <= 6);
  (match Epc.paging_stats epc with
  | Some s -> Alcotest.(check bool) "evictions happened" true (s.Epc.ewb > 0)
  | None -> Alcotest.fail "paging stats missing");
  for i = 0 to 11 do
    Alcotest.(check bytes)
      (Printf.sprintf "page %d intact" i)
      (pat i)
      (Mem.read_bytes_priv (Enclave.mem e) ~addr:(i * page) ~len:page)
  done;
  Enclave.destroy e;
  Alcotest.(check int) "drained" 0 (Epc.used_pages epc)

let test_paging_tamper_and_rollback_hard_fault () =
  let epc, e, pat = paged_enclave ~pool_pages:8 ~data_pages:6 in
  let cid = Enclave.id e in
  (* MAC tamper *)
  Alcotest.(check bool) "evict t" true (Epc.evict_page epc ~cid ~page:1);
  Alcotest.(check bool) "tamper" true (Epc.backing_tamper epc ~cid ~page:1);
  Alcotest.check_raises "tampered page is a hard fault"
    (Epc.Integrity_violation { cid; page = 1 }) (fun () ->
      Epc.eldu epc ~cid ~page:1);
  (* rollback: replay the version-1 sealed copy after a version-2 evict *)
  Alcotest.(check bool) "evict r" true (Epc.evict_page epc ~cid ~page:2);
  let old =
    match Epc.backing_snapshot epc ~cid ~page:2 with
    | Some c -> c
    | None -> Alcotest.fail "no sealed copy"
  in
  Epc.eldu epc ~cid ~page:2;
  Alcotest.(check bool) "evict r2" true (Epc.evict_page epc ~cid ~page:2);
  Epc.backing_restore epc ~cid ~page:2 old;
  Alcotest.check_raises "rolled-back page is a hard fault"
    (Epc.Integrity_violation { cid; page = 2 }) (fun () ->
      Epc.eldu epc ~cid ~page:2);
  (match Epc.paging_stats epc with
  | Some s -> Alcotest.(check int) "both rejections counted" 2 s.Epc.integrity_failures
  | None -> Alcotest.fail "paging stats missing");
  (* an untouched page still reloads cleanly *)
  Alcotest.(check bool) "evict c" true (Epc.evict_page epc ~cid ~page:4);
  Epc.eldu epc ~cid ~page:4;
  Alcotest.(check bytes) "clean page intact" (pat 4)
    (Mem.read_bytes_priv (Enclave.mem e) ~addr:(4 * page) ~len:page);
  Enclave.destroy e;
  Alcotest.(check int) "drained" 0 (Epc.used_pages epc);
  Alcotest.(check int) "backing drained" 0 (Epc.backing_used epc)

let suite =
  [
    Alcotest.test_case "epc accounting" `Quick test_epc_accounting;
    Alcotest.test_case "paging: zfod + evict/reload" `Quick
      test_paging_zfod_and_evict_reload;
    Alcotest.test_case "paging: overcommit pressure" `Quick
      test_paging_pressure_overcommit;
    Alcotest.test_case "paging: tamper/rollback hard fault" `Quick
      test_paging_tamper_and_rollback_hard_fault;
    Alcotest.test_case "sgx2 edmm" `Quick test_sgx2_edmm;
    Alcotest.test_case "sgx1 has no edmm" `Quick test_sgx1_has_no_edmm;
    Alcotest.test_case "measurement determinism" `Quick test_measurement_deterministic;
    Alcotest.test_case "measurement sensitivity" `Quick test_measurement_sensitive;
    Alcotest.test_case "sgx1 post-init restriction" `Quick test_sgx1_restriction;
    Alcotest.test_case "measurement needs EINIT" `Quick test_measure_before_init;
    Alcotest.test_case "destroy releases epc" `Quick test_destroy_releases_epc;
    Alcotest.test_case "aex saves/restores bounds" `Quick test_aex_restores_bounds;
    Alcotest.test_case "aex full bit-identity" `Quick test_aex_full_bit_identity;
    Alcotest.test_case "epc failure mid-build" `Quick test_epc_failure_mid_build;
    Alcotest.test_case "local attestation" `Quick test_attestation;
  ]
