(* Observability-layer tests: metric bucketing edges, ring-buffer
   wraparound, Chrome trace_event export validity, and — the load-bearing
   property — differential runs proving that tracing never perturbs the
   simulation: registers, memory, counters, cycle charges and the
   virtual clock are bit-identical with tracing enabled and disabled. *)

open Occlum_machine
open Occlum_isa
module Metrics = Occlum_obs.Metrics
module Trace = Occlum_obs.Trace
module Obs = Occlum_obs.Obs
module H = Occlum_workloads.Harness
module Os = Occlum_libos.Os

(* --- metrics ------------------------------------------------------------- *)

let test_counter () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "a" in
  Metrics.inc c;
  Metrics.add c 41;
  Alcotest.(check int) "accumulates" 42 (Metrics.value c);
  Alcotest.(check int) "get-or-create returns the same counter" 42
    (Metrics.value (Metrics.counter reg "a"));
  Alcotest.check_raises "histogram under a counter name"
    (Invalid_argument "Metrics.histogram: a is a counter") (fun () ->
      ignore (Metrics.histogram reg "a" ~bounds:[| 1 |]))

let test_histogram_edges () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "h" ~bounds:[| 10; 100; 1000 |] in
  (* one observation per interesting edge: below, exactly-at (inclusive),
     just-above, and past the last bound *)
  List.iter (Metrics.observe h) [ 0; 10; 11; 100; 101; 1000; 1001; 5000 ];
  Alcotest.(check (array int)) "inclusive upper bounds + overflow"
    [| 2; 2; 2; 2 |] (Metrics.bucket_counts h);
  Alcotest.(check int) "count" 8 (Metrics.hist_count h);
  Alcotest.(check int) "sum" 7223 (Metrics.hist_sum h);
  (* negative values land in the first bucket, not a crash *)
  Metrics.observe h (-5);
  Alcotest.(check (array int)) "negative in first bucket" [| 3; 2; 2; 2 |]
    (Metrics.bucket_counts h);
  Alcotest.check_raises "non-increasing bounds rejected"
    (Invalid_argument "Metrics.histogram: bounds not increasing")
    (fun () -> ignore (Metrics.histogram reg "bad" ~bounds:[| 5; 5 |]))

(* --- tracer ring ---------------------------------------------------------- *)

let test_ring_wraparound () =
  let r = Trace.create ~capacity:4 () in
  for i = 1 to 11 do
    Trace.emit r ~ts:(Int64.of_int i) (Trace.Quantum_start { pid = i })
  done;
  Alcotest.(check int) "length capped at capacity" 4 (Trace.length r);
  Alcotest.(check int) "total counts every emit" 11 (Trace.total r);
  Alcotest.(check int) "dropped = total - capacity" 7 (Trace.dropped r);
  let pids =
    List.map
      (fun (e : Trace.event) ->
        match e.kind with Trace.Quantum_start { pid } -> pid | _ -> -1)
      (Trace.events r)
  in
  Alcotest.(check (list int)) "keeps the newest, oldest first" [ 8; 9; 10; 11 ]
    pids;
  Trace.clear r;
  Alcotest.(check int) "clear empties the ring" 0 (Trace.length r);
  (* capacity 0: the disabled configuration records nothing *)
  let z = Trace.create ~capacity:0 () in
  Trace.emit z ~ts:0L (Trace.Quantum_start { pid = 1 });
  Alcotest.(check int) "zero-capacity stores nothing" 0 (Trace.length z);
  Alcotest.(check int) "zero-capacity counts drops" 1 (Trace.dropped z)

let test_class_parsing () =
  (match Obs.classes_of_string "syscall, net,dcache" with
  | Ok cls ->
      Alcotest.(check int) "three classes" 3 (List.length cls);
      Alcotest.(check bool) "syscall present" true (List.mem Obs.Syscall cls)
  | Error m -> Alcotest.fail m);
  (match Obs.classes_of_string "all" with
  | Ok cls ->
      Alcotest.(check int) "all = every class"
        (List.length Obs.all_classes) (List.length cls)
  | Error m -> Alcotest.fail m);
  match Obs.classes_of_string "syscall,bogus" with
  | Ok _ -> Alcotest.fail "unknown class accepted"
  | Error _ -> ()

(* --- Chrome export -------------------------------------------------------- *)

(* A minimal JSON syntax checker: enough to catch unbalanced structure,
   bad literals and broken string escaping in the exporter. *)
let json_valid (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail fmt = Printf.ksprintf (fun m -> failwith m) fmt in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos
    else fail "expected %c at %d" c !pos
  in
  let string_lit () =
    expect '"';
    let fin = ref false in
    while not !fin do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> incr pos; fin := true
      | Some '\\' -> (
          incr pos;
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> incr pos
          | Some 'u' ->
              incr pos;
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> incr pos
                | _ -> fail "bad \\u escape at %d" !pos
              done
          | _ -> fail "bad escape at %d" !pos)
      | Some c when Char.code c < 0x20 -> fail "raw control char at %d" !pos
      | Some _ -> incr pos
    done
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    if !pos = start then fail "expected number at %d" start
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then incr pos
        else begin
          let more = ref true in
          while !more do
            skip_ws ();
            string_lit ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            if peek () = Some ',' then incr pos else more := false
          done;
          skip_ws ();
          expect '}'
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then incr pos
        else begin
          let more = ref true in
          while !more do
            value ();
            skip_ws ();
            if peek () = Some ',' then incr pos else more := false
          done;
          skip_ws ();
          expect ']'
        end
    | Some '"' -> string_lit ()
    | Some ('t' | 'f' | 'n') ->
        let lit = if peek () = Some 't' then "true"
                  else if peek () = Some 'f' then "false" else "null" in
        if !pos + String.length lit <= n
           && String.sub s !pos (String.length lit) = lit
        then pos := !pos + String.length lit
        else fail "bad literal at %d" !pos
    | _ -> number ());
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage at %d of %d" !pos n

let test_chrome_export () =
  let r = Trace.create ~capacity:64 () in
  Trace.emit r ~ts:0L (Trace.Enclave_create { enclave = 1; size = 4096 });
  Trace.emit r ~ts:10L (Trace.Quantum_start { pid = 1 });
  Trace.emit r ~ts:50L (Trace.Syscall_enter { pid = 1; nr = 3 });
  Trace.emit r ~ts:90L
    (Trace.Syscall_exit
       { pid = 1; nr = 3; ret = -2L; latency_ns = 40L; blocked = false });
  Trace.emit r ~ts:100L (Trace.Quantum_end { pid = 1; insns = 90; cycles = 270 });
  (* a path needing every escape class: quote, backslash, control chars *)
  Trace.emit r ~ts:110L
    (Trace.Spawn { pid = 2; parent = 1; path = "/bin/\"we\\ird\"\n\tname\x01" });
  let json = Trace.to_chrome_json r in
  (match json_valid json with
  | () -> ()
  | exception Failure m -> Alcotest.fail ("invalid chrome JSON: " ^ m));
  let contains hay needle =
    Occlum_util.Bytes_util.contains ~needle (Bytes.of_string hay)
  in
  Alcotest.(check bool) "has traceEvents" true (contains json "\"traceEvents\"");
  Alcotest.(check bool) "B/E pair for the syscall" true
    (contains json "\"ph\":\"E\"");
  let summary = Trace.summary r in
  Alcotest.(check bool) "summary names kinds" true
    (contains summary "syscall_enter")

(* --- differential: tracing must not perturb the simulation ---------------- *)

let cpu_state_str (cpu : Cpu.t) mem =
  Printf.sprintf
    "pc=%d eq=%b lt=%b cycles=%d insns=%d loads=%d stores=%d bnd=%d hit=%d miss=%d inv=%d regs=%s memhash=%d"
    cpu.Cpu.pc cpu.Cpu.flag_eq cpu.Cpu.flag_lt cpu.Cpu.cycles cpu.Cpu.insns
    cpu.Cpu.loads cpu.Cpu.stores cpu.Cpu.bound_checks cpu.Cpu.dcache_hits
    cpu.Cpu.dcache_misses cpu.Cpu.dcache_invalidations
    (String.concat ","
       (Array.to_list (Array.map Int64.to_string cpu.Cpu.regs)))
    (Hashtbl.hash (Mem.raw mem))

let test_differential_interp () =
  (* a store-heavy loop so memory contents are part of the comparison *)
  let r1 = Reg.of_int 1 and r2 = Reg.of_int 2 in
  let insns =
    [
      Insn.Mov_imm (r1, 200L);
      Insn.Mov_imm (r2, Int64.of_int (8 * 4096));
      Insn.Store
        { dst = Insn.Sib { base = r2; index = None; scale = 1; disp = 0 };
          src = r1; size = 8 };
      Insn.Alu (Insn.Add, r2, Insn.O_imm 8L);
      Insn.Alu (Insn.Sub, r1, Insn.O_imm 1L);
      Insn.Cmp (r1, Insn.O_imm 0L);
      Insn.Jcc (Insn.Ne, -100);
    ]
  in
  (* fix the backward displacement like the bench hot loop does *)
  let body_len =
    List.fold_left
      (fun a i -> a + String.length (Codec.encode i))
      0 [ List.nth insns 2; List.nth insns 3; List.nth insns 4; List.nth insns 5 ]
  in
  let rec fix disp =
    let len = String.length (Codec.encode (Insn.Jcc (Insn.Ne, disp))) in
    let disp' = -(body_len + len) in
    if disp' = disp then Insn.Jcc (Insn.Ne, disp) else fix disp'
  in
  let insns =
    [ List.nth insns 0; List.nth insns 1; List.nth insns 2; List.nth insns 3;
      List.nth insns 4; List.nth insns 5; fix (-body_len) ]
  in
  let go obs =
    let mem, cpu = Test_machine.setup insns in
    let cache = Decode_cache.create () in
    let stop = Interp.run ~cache ~obs mem cpu ~fuel:5000 in
    (Interp.stop_to_string stop ^ " " ^ cpu_state_str cpu mem)
  in
  let off = go Obs.disabled in
  let obs = Obs.create ~capacity:256 () in
  let on = go obs in
  Alcotest.(check string) "traced = untraced (registers, memory, counters)"
    off on;
  Alcotest.(check bool) "events were actually recorded" true
    (Trace.total obs.Obs.trace > 0)

let test_differential_spec () =
  (* full SPEC-kernel binaries through the bare-metal runner, bit-compared
     across every architectural counter and the program output *)
  let kernels = Occlum_workloads.Spec.all ~scale:1 in
  List.iter
    (fun (name, prog) ->
      let oelf =
        Occlum_toolchain.Compile.compile_exn
          ~config:Occlum_toolchain.Codegen.sfi prog
      in
      let fingerprint (r : Occlum_baseline.Native_run.result) =
        Printf.sprintf "exit=%Ld cycles=%d insns=%d loads=%d stores=%d bnd=%d out=%s"
          r.exit_code r.cycles r.insns r.loads r.stores r.bound_checks r.stdout
      in
      let off = fingerprint (Occlum_baseline.Native_run.run oelf) in
      let obs = Obs.create ~capacity:1024 () in
      let on = fingerprint (Occlum_baseline.Native_run.run ~obs oelf) in
      Alcotest.(check string) (name ^ ": traced = untraced") off on)
    (match kernels with a :: b :: c :: _ -> [ a; b; c ] | l -> l)

let test_differential_libos () =
  (* a whole multi-process LibOS run: console bytes, virtual clock and
     bookkeeping counters must not move when tracing is on *)
  let go obs =
    let os = H.boot ?obs H.Occlum in
    H.install os H.Occlum Occlum_workloads.Fish.binaries;
    let r = H.timed_run os "/bin/fish" ~args:[ "2"; "30" ] in
    Printf.sprintf "clock=%Ld syscalls=%d spawns=%d faults=%d console=%s"
      (Os.clock os) os.Os.syscalls os.Os.spawns (List.length os.Os.faults)
      r.H.console
  in
  let off = go None in
  let obs = Obs.create () in
  let on = go (Some obs) in
  Alcotest.(check string) "traced LibOS run = untraced" off on;
  let kinds =
    List.sort_uniq compare
      (List.map
         (fun (e : Trace.event) -> Trace.kind_name e.kind)
         (Trace.events obs.Obs.trace))
  in
  Alcotest.(check bool)
    (Printf.sprintf "boot trace has >= 4 distinct event kinds (got %d)"
       (List.length kinds))
    true
    (List.length kinds >= 4)

let test_disabled_is_inert () =
  (* the shared disabled instance must never accumulate anything, from
     any emission site *)
  let os = H.boot H.Occlum in
  H.install os H.Occlum Occlum_workloads.Fish.binaries;
  ignore (H.timed_run os "/bin/fish" ~args:[ "1"; "10" ]);
  Alcotest.(check int) "no events recorded" 0 (Trace.total Obs.disabled.Obs.trace);
  Alcotest.(check (list (pair string (float 0.))))
    "no metrics registered" []
    (Metrics.to_json_items Obs.disabled.Obs.metrics)

let suite =
  [
    Alcotest.test_case "counters" `Quick test_counter;
    Alcotest.test_case "histogram bucket edges" `Quick test_histogram_edges;
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "event-class parsing" `Quick test_class_parsing;
    Alcotest.test_case "chrome trace_event export" `Quick test_chrome_export;
    Alcotest.test_case "differential: interpreter" `Quick test_differential_interp;
    Alcotest.test_case "differential: SPEC kernels" `Quick test_differential_spec;
    Alcotest.test_case "differential: LibOS run" `Quick test_differential_libos;
    Alcotest.test_case "disabled instance is inert" `Quick test_disabled_is_inert;
  ]
