(* OELF binary format: serialization roundtrips, malformed input
   rejection, and signing-payload sensitivity. *)

open Occlum_oelf

let sample () =
  {
    Oelf.code = Bytes.of_string (String.make 100 'c');
    data = Bytes.of_string (String.make 50 'd');
    data_region_size = 8192;
    heap_start = 4096;
    stack_size = 2048;
    entry = 64;
    symbols = [ ("_start", 64); ("f_main", 80) ];
    secret_ranges = [ (4096, 32) ];
    signature = None;
  }

let test_roundtrip () =
  let o = sample () in
  let o' = Oelf.of_string (Oelf.to_string o) in
  Alcotest.(check bool) "equal" true (o = o');
  let signed = { o with signature = Some (String.make 32 's') } in
  let signed' = Oelf.of_string (Oelf.to_string signed) in
  Alcotest.(check bool) "signed equal" true (signed = signed')

let test_malformed () =
  let reject s =
    match Oelf.of_string s with
    | exception Oelf.Malformed _ -> ()
    | _ -> Alcotest.fail "expected Malformed"
  in
  reject "";
  reject "NOTELF\x00\x00\x00\x00";
  reject (String.sub (Oelf.to_string (sample ())) 0 20);
  (* trailing bytes *)
  reject (Oelf.to_string (sample ()) ^ "junk")

let test_signing_payload_sensitivity () =
  let o = sample () in
  let p0 = Oelf.signing_payload o in
  let mutations =
    [
      { o with Oelf.code = Bytes.of_string (String.make 100 'C') };
      { o with Oelf.data = Bytes.of_string (String.make 50 'D') };
      { o with Oelf.entry = 72 };
      { o with Oelf.data_region_size = 4096 };
      { o with Oelf.stack_size = 1024 };
      { o with Oelf.heap_start = 2048 };
      { o with Oelf.symbols = [ ("_start", 64) ] };
      { o with Oelf.secret_ranges = [] };
      { o with Oelf.secret_ranges = [ (4096, 64) ] };
    ]
  in
  List.iter
    (fun m ->
      Alcotest.(check bool) "payload differs" true (Oelf.signing_payload m <> p0))
    mutations;
  (* the signature itself is excluded from the payload *)
  Alcotest.(check string) "signature excluded" p0
    (Oelf.signing_payload { o with Oelf.signature = Some "sig" })

let test_layout_helpers () =
  let o = sample () in
  Alcotest.(check int) "code region rounds up" 4096 (Oelf.code_region_size o);
  Alcotest.(check int) "d begins after code+guard" (4096 + 4096)
    (Oelf.d_begin_rel o);
  Alcotest.(check (pair int int)) "heap zone" (4096, 8192 - 2048) (Oelf.heap_zone o);
  Alcotest.(check (option int)) "symbol" (Some 80) (Oelf.find_symbol o "f_main");
  Alcotest.(check (option int)) "missing symbol" None (Oelf.find_symbol o "nope")

let test_signer () =
  let o = sample () in
  Alcotest.(check bool) "unsigned rejected" false (Occlum_verifier.Signer.check o);
  let signed = Occlum_verifier.Signer.sign o in
  Alcotest.(check bool) "signed ok" true (Occlum_verifier.Signer.check signed);
  (* flip a code byte: the signature must break *)
  let tampered = { signed with Oelf.code = Bytes.copy signed.Oelf.code } in
  Bytes.set tampered.Oelf.code 0 'X';
  Alcotest.(check bool) "tamper detected" false (Occlum_verifier.Signer.check tampered)

let suite =
  [
    Alcotest.test_case "serialize roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "malformed inputs" `Quick test_malformed;
    Alcotest.test_case "signing payload sensitivity" `Quick
      test_signing_payload_sensitivity;
    Alcotest.test_case "layout helpers" `Quick test_layout_helpers;
    Alcotest.test_case "signer" `Quick test_signer;
  ]
