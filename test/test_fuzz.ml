(* The fuzzing subsystem's own tests: bit-reproducibility of reports,
   the cross-layer properties at acceptance volume (500 cases each
   under an interrupt storm), the codec exhaustive round-trip, a
   mutation test proving a deliberately broken guard is caught and
   auto-shrunk, AEX interposition between a guard and its guarded
   access, LibOS EPC-pressure behavior, and replay of the checked-in
   minimized corpus. *)

open Occlum_isa
open Occlum_fuzzing
module R = Occlum_toolchain.Codegen_regs
module Asm = Occlum_toolchain.Asm
module Layout = Occlum_toolchain.Layout
module Os = Occlum_libos.Os
module Epc = Occlum_sgx.Epc
module Errno = Occlum_abi.Abi.Errno

(* --- report determinism ---------------------------------------------------- *)

let test_determinism () =
  let json () =
    Check.report_to_json (Check.run ~seed:7L ~cases:40 ())
  in
  Alcotest.(check string) "same seed, bit-identical report" (json ()) (json ())

let test_distinct_seeds () =
  (* different seeds must actually explore different programs: the AEX
     injection totals (a function of generated program shapes) differ *)
  let aex seed =
    (Check.run ~properties:[ Check.Cache_equivalence ] ~seed ~cases:40 ())
      .Check.injected.Inject.aex
  in
  Alcotest.(check bool) "seeds diverge" true (aex 1L <> aex 2L)

(* --- the nine properties at acceptance volume ------------------------------ *)

let test_all_properties_500 () =
  let reg = Occlum_obs.Metrics.create () in
  let report = Check.run ~metrics:reg ~seed:42L ~cases:500 () in
  List.iter
    (fun (r : Check.prop_result) ->
      Alcotest.(check int)
        (Check.property_name r.Check.rprop ^ " failures")
        0
        (List.length r.Check.failures))
    report.Check.results;
  Alcotest.(check bool) "storm actually stormed" true
    (report.Check.injected.Inject.aex > 100_000);
  Alcotest.(check bool) "EPC faults injected" true
    (report.Check.injected.Inject.epc > 0);
  Alcotest.(check bool) "I/O faults injected" true
    (report.Check.injected.Inject.io > 0);
  Alcotest.(check bool) "channel faults injected" true
    (report.Check.injected.Inject.chan > 0);
  Alcotest.(check int) "fuzz.cases metric" (500 * 9)
    (Occlum_obs.Metrics.value (Occlum_obs.Metrics.counter reg "fuzz.cases"));
  Alcotest.(check int) "fuzz.failures metric" 0
    (Occlum_obs.Metrics.value (Occlum_obs.Metrics.counter reg "fuzz.failures"))

(* --- mutation test: a broken guard is caught and auto-shrunk --------------- *)

let d_size = Gen.layout.Layout.data_region_size

let test_broken_guard_caught_and_shrunk () =
  (* splice an unguarded store aimed one guard page past D — where the
     next SIP's domain sits — into an ordinary generated program *)
  let bad =
    Asm.Ins
      (Insn.Store
         {
           dst =
             Sib
               {
                 base = R.data_base;
                 index = None;
                 scale = 1;
                 disp = d_size + 4096 + 128;
               };
           src = Reg.r1;
           size = 8;
         })
  in
  let items =
    let rec splice = function
      | [] -> [ bad ]
      | Asm.Label "spin" :: rest -> bad :: Asm.Label "spin" :: rest
      | it :: rest -> it :: splice rest
    in
    splice (Gen.program (Rng.of_seed 1337L))
  in
  let escapes its =
    match Exec.run_contained (Exec.make (Gen.link its)) with
    | Error _ -> true
    | Ok _ -> false
  in
  (* the runtime containment check catches it even with the verifier
     bypassed entirely... *)
  Alcotest.(check bool) "victim write detected" true (escapes items);
  (* ...the verifier rejects it statically... *)
  (match Occlum_verifier.Verify.verify (Gen.link items) with
  | Ok _ -> Alcotest.fail "verifier accepted an unguarded cross-SIP store"
  | Error _ -> ());
  (* ...and the minimizer reduces the reproducer to a handful of
     instructions (acceptance bar: <= 10) *)
  let small = Shrink.minimize escapes items in
  Alcotest.(check bool) "still failing after shrink" true (escapes small);
  let n = Shrink.instruction_count small in
  if n > 10 then
    Alcotest.failf "shrunk reproducer has %d instructions, want <= 10" n

(* --- codec: exhaustive shapes + byte-soup totality ------------------------- *)

let test_codec_exhaustive () =
  List.iter
    (fun i ->
      let enc = Bytes.of_string (Codec.encode i) in
      match Codec.decode enc ~pos:0 ~limit:(Bytes.length enc) with
      | Ok (i', len) when i' = i && len = Bytes.length enc -> ()
      | Ok (i', _) ->
          Alcotest.failf "round-trip broke: [%s] -> [%s]" (Insn.to_string i)
            (Insn.to_string i')
      | Error e ->
          Alcotest.failf "decode failed on [%s]: %s" (Insn.to_string i)
            (Codec.error_to_string e))
    Gen.all_insn_shapes;
  Alcotest.(check bool) "shape catalogue is substantial" true
    (List.length Gen.all_insn_shapes > 60)

let test_codec_soup_total () =
  let rng = Rng.of_seed 99L in
  for _ = 1 to 10_000 do
    let soup = Gen.byte_soup rng in
    let limit = Bytes.length soup in
    let pos = ref 0 in
    while !pos < limit do
      match Codec.decode soup ~pos:!pos ~limit with
      | Ok (i, n) ->
          Alcotest.(check bool) "positive length" true (n > 0);
          let enc = Bytes.of_string (Codec.encode i) in
          (match Codec.decode enc ~pos:0 ~limit:(Bytes.length enc) with
          | Ok (i', _) when i' = i -> ()
          | _ ->
              Alcotest.failf "soup-decoded [%s] does not re-round-trip"
                (Insn.to_string i));
          pos := !pos + n
      | Error _ -> incr pos
      | exception e ->
          Alcotest.failf "decode raised on soup: %s" (Printexc.to_string e)
    done
  done

(* --- AEX between a guard and its guarded access ---------------------------- *)

let test_aex_between_guard_and_access () =
  let g = Layout.header_size in
  let slot : Insn.mem =
    Sib { base = R.data_base; index = None; scale = 1; disp = g }
  in
  let items =
    [
      Asm.Label "_start";
      Asm.Cfi_label_here;
      Asm.Ins (Insn.Mov_imm (Reg.r1, 0x5EED5EEDL));
      Asm.Mem_guard slot;
      (* an AEX lands exactly here under the period-1 storm *)
      Asm.Ins (Insn.Store { dst = slot; src = Reg.r1; size = 8 });
      Asm.Label "spin";
      Asm.Jmp_l "spin";
    ]
  in
  let env = Exec.make (Gen.link items) in
  (* interrupt storm: an AEX + full scramble + resume at EVERY boundary,
     including between the bndcl/bndcu pair and the store they guard *)
  match Exec.run_contained ~fuel:64 ~interrupt:(fun () -> true) env with
  | Error v -> Alcotest.fail (Exec.violation_to_string v)
  | Ok _ ->
      Alcotest.(check int64) "guarded store landed after AEX storm"
        0x5EED5EEDL
        (Occlum_machine.Mem.read_u64_priv env.Exec.mem (env.Exec.d_base + g))

(* --- LibOS under EPC pressure ---------------------------------------------- *)

let tiny_signed =
  lazy
    (let module T = Occlum_toolchain in
     let prog =
       T.Runtime.program [ T.Ast.func "main" [] [ T.Ast.Return (T.Ast.i 0) ] ]
     in
     let oelf = T.Compile.compile_exn ~config:T.Codegen.sfi prog in
     match Occlum_verifier.Verify.verify_and_sign oelf with
     | Ok s -> s
     | Error _ -> Alcotest.fail "tiny binary rejected")

let test_spawn_epc_pressure () =
  let config = { Os.default_config with Os.sgx2 = true } in
  let os = Os.boot ~config () in
  Os.install_binary os "/bin/t" (Lazy.force tiny_signed);
  let free0 = Epc.free_pages os.Os.epc in
  let inj = Inject.make () in
  Inject.arm_epc inj ~at:1;
  Fun.protect ~finally:Inject.disarm (fun () ->
      match Os.spawn os ~parent_pid:0 ~path:"/bin/t" ~args:[] with
      | _ -> Alcotest.fail "spawn under EPC exhaustion must fail"
      | exception Os.Spawn_error e ->
          Alcotest.(check int) "clean ENOMEM" Errno.enomem e);
  Alcotest.(check int) "no EPC leaked by the failed spawn" free0
    (Epc.free_pages os.Os.epc);
  (* the LibOS must remain fully functional once the pressure is gone *)
  let pid = Os.spawn os ~parent_pid:0 ~path:"/bin/t" ~args:[] in
  (match Os.wait_pid_exit ~max_steps:10_000 os pid with
  | Os.All_exited -> ()
  | _ -> Alcotest.fail "recovered spawn did not run to exit");
  (match Os.find_proc os pid with
  | Some p -> Alcotest.(check int) "exit code" 0 p.Os.exit_code
  | None -> ());
  Alcotest.(check int) "EPC returned after exit" free0
    (Epc.free_pages os.Os.epc)

(* --- corpus: the checked-in minimized reproducers replay clean ------------- *)

let corpus_files () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".fuzz")
  |> List.sort compare
  |> List.map (Filename.concat "corpus")

let test_corpus_replay () =
  let files = corpus_files () in
  Alcotest.(check bool)
    (Printf.sprintf "corpus is seeded (%d files)" (List.length files))
    true
    (List.length files >= 8);
  List.iter
    (fun file ->
      (* the cluster-orderliness corpus carries lifecycle transitions,
         not instructions; it has its own format and replayer *)
      if Filename.basename file = "gen-cluster-orderliness.fuzz" then begin
        match Check.replay_orderliness file with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: %s" file e
      end
      else
        match Corpus.load file with
        | Error e -> Alcotest.failf "%s does not parse: %s" file e
        | Ok items -> (
            match Check.replay_items items with
            | Ok () -> ()
            | Error e -> Alcotest.failf "%s: %s" file e))
    files

let test_corpus_format_roundtrip () =
  let items = Gen.program (Rng.of_seed 5L) in
  match Corpus.of_string (Corpus.to_string ~comment:"round\ntrip" items) with
  | Error e -> Alcotest.fail e
  | Ok items' ->
      Alcotest.(check bool) "corpus text format round-trips" true
        (items = items')

let suite =
  [
    Alcotest.test_case "report determinism" `Quick test_determinism;
    Alcotest.test_case "distinct seeds explore" `Quick test_distinct_seeds;
    Alcotest.test_case "nine properties x 500 cases" `Quick
      test_all_properties_500;
    Alcotest.test_case "broken guard caught + shrunk <= 10" `Quick
      test_broken_guard_caught_and_shrunk;
    Alcotest.test_case "codec exhaustive shapes" `Quick test_codec_exhaustive;
    Alcotest.test_case "codec soup totality (10k)" `Quick test_codec_soup_total;
    Alcotest.test_case "aex between guard and access" `Quick
      test_aex_between_guard_and_access;
    Alcotest.test_case "spawn under EPC pressure" `Quick
      test_spawn_epc_pressure;
    Alcotest.test_case "corpus replay" `Quick test_corpus_replay;
    Alcotest.test_case "corpus format round-trip" `Quick
      test_corpus_format_roundtrip;
  ]
