(* Decoded-block cache tests: the fast path must be observationally
   identical to the uncached fetch/decode/execute loop — same registers,
   flags, counters and cycle charges, same fault addresses, and the same
   quantum-expiry boundaries — and faults must be atomic: an instruction
   that faults leaves every register (SP included) and the pc untouched. *)

open Occlum_machine
open Occlum_isa

let setup = Test_machine.setup
let data = 8 * 4096

let enc_len insns =
  List.fold_left (fun a i -> a + String.length (Codec.encode i)) 0 insns

(* Everything observable about a stopped machine, as one string so a
   single alcotest check reports any divergence. *)
let state_str stop cpu =
  Printf.sprintf "stop=%s pc=%d eq=%b lt=%b cycles=%d insns=%d loads=%d stores=%d bnd=%d regs=%s"
    (Interp.stop_to_string stop)
    cpu.Cpu.pc cpu.Cpu.flag_eq cpu.Cpu.flag_lt cpu.Cpu.cycles cpu.Cpu.insns
    cpu.Cpu.loads cpu.Cpu.stores cpu.Cpu.bound_checks
    (String.concat ","
       (Array.to_list (Array.map Int64.to_string cpu.Cpu.regs)))

(* Run the same program with and without the cache and insist the
   observable outcome is identical; returns the cached run. *)
let run_both ?(fuel = 1000) ?(code_perm = Mem.perm_rwx) ?(prep = fun _ _ -> ())
    label insns =
  let go cache =
    let mem, cpu = setup ~code_perm insns in
    prep mem cpu;
    let stop = Interp.run ?cache mem cpu ~fuel in
    (stop, cpu)
  in
  let su, cu = go None in
  let sc, cc = go (Some (Decode_cache.create ())) in
  Alcotest.(check string) (label ^ ": cached = uncached") (state_str su cu)
    (state_str sc cc);
  (sc, cc)

(* A counted loop ending in a syscall gate; the branch displacement is
   relative to the end of the jcc whose own length depends on the
   displacement, so iterate to the fixed point. *)
let loop_prog iters =
  let body =
    [
      Insn.Alu (Add, Reg.r2, O_imm 3L);
      Insn.Alu (Sub, Reg.r1, O_imm 1L);
      Insn.Cmp (Reg.r1, O_imm 0L);
    ]
  in
  let body_len = enc_len body in
  let rec fix d =
    let len = String.length (Codec.encode (Insn.Jcc (Ne, d))) in
    if -(body_len + len) = d then Insn.Jcc (Ne, d) else fix (-(body_len + len))
  in
  (Insn.Mov_imm (Reg.r1, Int64.of_int iters)
   :: Insn.Mov_imm (Reg.r2, 0L) :: body)
  @ [ fix (-body_len); Insn.Syscall_gate ]

(* --- fault-state atomicity ---------------------------------------------- *)

let expect_write_fault label stop ~addr =
  match stop with
  | Interp.Stop_fault (Fault.Page_fault { addr = a; access = Fault.Write })
    when a = addr ->
      ()
  | s ->
      Alcotest.fail
        (Printf.sprintf "%s: expected write fault at %d, got %s" label addr
           (Interp.stop_to_string s))

let test_push_fault_atomic () =
  List.iter
    (fun cached ->
      let label = if cached then "cached" else "uncached" in
      let mem, cpu = setup [ Insn.Push Reg.r1 ] in
      (* sp at the bottom of the data region: the push's store lands in
         the unmapped page below *)
      Cpu.set cpu Reg.sp (Int64.of_int data);
      let cache = if cached then Some (Decode_cache.create ()) else None in
      let stop = Interp.run ?cache mem cpu ~fuel:10 in
      expect_write_fault label stop ~addr:(data - 8);
      Alcotest.(check int64) (label ^ ": sp unchanged") (Int64.of_int data)
        (Cpu.get cpu Reg.sp);
      Alcotest.(check int) (label ^ ": pc at faulting push") 4096 cpu.Cpu.pc)
    [ false; true ]

let test_call_fault_atomic () =
  List.iter
    (fun cached ->
      let label = if cached then "cached" else "uncached" in
      let mem, cpu = setup [ Insn.Call 16 ] in
      Cpu.set cpu Reg.sp (Int64.of_int data);
      let cache = if cached then Some (Decode_cache.create ()) else None in
      let stop = Interp.run ?cache mem cpu ~fuel:10 in
      expect_write_fault label stop ~addr:(data - 8);
      Alcotest.(check int64) (label ^ ": sp unchanged") (Int64.of_int data)
        (Cpu.get cpu Reg.sp);
      Alcotest.(check int) (label ^ ": pc not redirected") 4096 cpu.Cpu.pc)
    [ false; true ]

let test_ret_fault_atomic () =
  List.iter
    (fun (name, insn) ->
      List.iter
        (fun cached ->
          let label =
            Printf.sprintf "%s %s" name (if cached then "cached" else "uncached")
          in
          let mem, cpu = setup [ insn ] in
          (* sp in the guard page above the data region: the return
             address load faults *)
          let guard = 12 * 4096 in
          Cpu.set cpu Reg.sp (Int64.of_int guard);
          let cache = if cached then Some (Decode_cache.create ()) else None in
          (match Interp.run ?cache mem cpu ~fuel:10 with
          | Interp.Stop_fault
              (Fault.Page_fault { addr; access = Fault.Read })
            when addr = guard ->
              ()
          | s ->
              Alcotest.fail
                (label ^ ": expected read fault, got " ^ Interp.stop_to_string s));
          Alcotest.(check int64) (label ^ ": sp unchanged")
            (Int64.of_int guard) (Cpu.get cpu Reg.sp);
          Alcotest.(check int) (label ^ ": pc unchanged") 4096 cpu.Cpu.pc)
        [ false; true ])
    [ ("ret", Insn.Ret); ("ret_imm", Insn.Ret_imm 16) ]

(* --- counter fixes ------------------------------------------------------- *)

let test_ret_counts_load () =
  (* push a return address pointing at the gate after the ret, so the
     ret's stack read must show up in [loads] *)
  let rec fix target =
    let pre =
      [ Insn.Mov_imm (Reg.r1, Int64.of_int target); Insn.Push Reg.r1; Insn.Ret ]
    in
    if 4096 + enc_len pre = target then pre else fix (4096 + enc_len pre)
  in
  let prog = fix 4200 @ [ Insn.Syscall_gate ] in
  let sc, cc = run_both "ret load" prog in
  (match sc with
  | Interp.Stop_syscall -> ()
  | s -> Alcotest.fail ("expected gate, got " ^ Interp.stop_to_string s));
  Alcotest.(check int) "ret counted as a load" 1 cc.Cpu.loads;
  Alcotest.(check int) "push counted as a store" 1 cc.Cpu.stores

let test_jmp_mem_counts_load () =
  let rec fix target =
    let pre =
      [
        Insn.Mov_imm (Reg.r2, Int64.of_int target);
        Insn.Mov_imm (Reg.r3, Int64.of_int data);
        Insn.Store
          { dst = Sib { base = Reg.r3; index = None; scale = 1; disp = 0 };
            src = Reg.r2; size = 8 };
        Insn.Jmp_mem (Sib { base = Reg.r3; index = None; scale = 1; disp = 0 });
      ]
    in
    if 4096 + enc_len pre = target then pre else fix (4096 + enc_len pre)
  in
  let prog = fix 4200 @ [ Insn.Syscall_gate ] in
  let sc, cc = run_both "jmp_mem load" prog in
  (match sc with
  | Interp.Stop_syscall -> ()
  | s -> Alcotest.fail ("expected gate, got " ^ Interp.stop_to_string s));
  Alcotest.(check int) "jmp_mem target read counted" 1 cc.Cpu.loads

let test_vscatter_counts_stores () =
  let prog =
    [
      Insn.Mov_imm (Reg.r3, Int64.of_int (data + 64));
      Insn.Mov_imm (Reg.r4, 0L);
      Insn.Mov_imm (Reg.r5, 7L);
      Insn.Vscatter { base = Reg.r3; index = Reg.r4; scale = 8; src = Reg.r5 };
      Insn.Syscall_gate;
    ]
  in
  let _, cc = run_both "vscatter" prog in
  Alcotest.(check int) "vscatter counted as 4 stores" 4 cc.Cpu.stores

(* --- differential: identical observable behaviour ------------------------ *)

let test_differential_programs () =
  ignore (run_both "hot loop" (loop_prog 500));
  ignore
    (run_both "memory mix"
       [
         Insn.Mov_imm (Reg.r1, Int64.of_int data);
         Insn.Mov_imm (Reg.r2, 0x1234L);
         Insn.Store
           { dst = Sib { base = Reg.r1; index = None; scale = 1; disp = 8 };
             src = Reg.r2; size = 8 };
         Insn.Load
           { dst = Reg.r3;
             src = Sib { base = Reg.r1; index = None; scale = 1; disp = 8 };
             size = 8 };
         Insn.Push Reg.r3;
         Insn.Pop Reg.r4;
         Insn.Lea (Reg.r5, Sib { base = Reg.r1; index = Some Reg.r2; scale = 1; disp = -4 });
         Insn.Syscall_gate;
       ]);
  (* a faulting load: the fault address and pre-fault state must agree *)
  ignore
    (run_both "faulting load"
       [
         Insn.Mov_imm (Reg.r1, Int64.of_int (13 * 4096));
         Insn.Load
           { dst = Reg.r2;
             src = Sib { base = Reg.r1; index = None; scale = 1; disp = 0 };
             size = 8 };
       ]);
  (* non-fragile (r-x) code takes the non-revalidating fast path *)
  ignore (run_both "hot loop r-x" ~code_perm:Mem.perm_rx (loop_prog 500))

let test_differential_quantum () =
  (* Stop_quantum must land on the same instruction boundary for every
     fuel value, including mid-block expiry *)
  for fuel = 1 to 25 do
    ignore (run_both ~fuel (Printf.sprintf "fuel=%d" fuel) (loop_prog 500))
  done

(* --- invalidation --------------------------------------------------------- *)

let test_priv_write_invalidates () =
  let mem, cpu = setup [ Insn.Mov_imm (Reg.r1, 1L); Insn.Syscall_gate ] in
  let cache = Decode_cache.create () in
  (match Interp.run ~cache mem cpu ~fuel:100 with
  | Interp.Stop_syscall -> ()
  | s -> Alcotest.fail ("first run: " ^ Interp.stop_to_string s));
  Alcotest.(check int64) "first immediate" 1L (Cpu.get cpu Reg.r1);
  (* the loader path: privileged rewrite of the code page (slot reuse) *)
  let patched, _ =
    Codec.encode_program [ Insn.Mov_imm (Reg.r1, 2L); Insn.Syscall_gate ]
  in
  Mem.write_bytes_priv mem ~addr:4096 patched;
  cpu.Cpu.pc <- 4096;
  (match Interp.run ~cache mem cpu ~fuel:100 with
  | Interp.Stop_syscall -> ()
  | s -> Alcotest.fail ("second run: " ^ Interp.stop_to_string s));
  Alcotest.(check int64) "patched immediate observed" 2L (Cpu.get cpu Reg.r1);
  let _, _, invalidations = Decode_cache.stats cache in
  Alcotest.(check bool) "stale block dropped" true (invalidations >= 1)

let test_self_modifying_differential () =
  (* a store into the block's own page, ahead of the pc: the overwritten
     instruction (a nop turned into a syscall gate) must take effect at
     its fetch, cached or not *)
  let gate = Codec.encode Insn.Syscall_gate in
  Alcotest.(check int) "gate is a 1-byte opcode" 1 (String.length gate);
  let rec fix target =
    let pre =
      [
        Insn.Mov_imm (Reg.r3, Int64.of_int target);
        Insn.Mov_imm (Reg.r4, Int64.of_int (Char.code gate.[0]));
        Insn.Store
          { dst = Sib { base = Reg.r3; index = None; scale = 1; disp = 0 };
            src = Reg.r4; size = 1 };
      ]
    in
    if 4096 + enc_len pre = target then pre else fix (4096 + enc_len pre)
  in
  let prog =
    fix 4200 @ [ Insn.Nop; Insn.Mov_imm (Reg.r1, 99L); Insn.Syscall_gate ]
  in
  let sc, cc = run_both "self-modifying" prog in
  (match sc with
  | Interp.Stop_syscall -> ()
  | s -> Alcotest.fail ("expected injected gate, got " ^ Interp.stop_to_string s));
  Alcotest.(check int64) "stopped before mov r1" 0L (Cpu.get cc Reg.r1)

(* --- end to end ----------------------------------------------------------- *)

let native_summary (r : Occlum_baseline.Native_run.result) =
  Printf.sprintf "exit=%Ld cycles=%d insns=%d loads=%d stores=%d bnd=%d out=%S"
    r.exit_code r.cycles r.insns r.loads r.stores r.bound_checks r.stdout

let test_spec_differential () =
  List.iter
    (fun (name, prog) ->
      let oelf =
        Occlum_toolchain.Compile.compile_exn
          ~config:Occlum_toolchain.Codegen.sfi prog
      in
      let u = Occlum_baseline.Native_run.run ~decode_cache:false oelf in
      let c = Occlum_baseline.Native_run.run oelf in
      Alcotest.(check string) (name ^ ": identical run") (native_summary u)
        (native_summary c);
      Alcotest.(check bool) (name ^ ": cache engaged") true (c.dcache_hits > 0))
    (Occlum_workloads.Spec.all ~scale:1)

let test_libos_cache () =
  let module Os = Occlum_libos.Os in
  let _, prog = List.hd (Occlum_workloads.Spec.all ~scale:1) in
  let oelf =
    match
      Occlum_verifier.Verify.verify_and_sign
        (Occlum_toolchain.Compile.compile_exn
           ~config:Occlum_toolchain.Codegen.sfi prog)
    with
    | Ok signed -> signed
    | Error _ -> Alcotest.fail "SPEC kernel failed verification"
  in
  let run dc =
    let config = { Os.default_config with decode_cache = dc } in
    let os = Os.boot ~config () in
    ignore (Os.spawn_initial os oelf ~args:[]);
    let status = Os.run ~max_steps:500_000 os in
    (match status with
    | Os.All_exited -> ()
    | _ -> Alcotest.fail "SPEC kernel did not exit under the LibOS");
    (os, Printf.sprintf "clock=%Ld out=%S" (Os.clock os) (Os.console_output os))
  in
  let os_u, su = run false in
  let os_c, sc = run true in
  Alcotest.(check string) "LibOS run identical" su sc;
  Alcotest.(check bool) "stats absent when disabled" true
    (Os.decode_cache_stats os_u = None);
  match Os.decode_cache_stats os_c with
  | Some (hits, _, _) ->
      Alcotest.(check bool) "cache engaged under the LibOS" true (hits > 0)
  | None -> Alcotest.fail "stats missing with the cache enabled"

let suite =
  [
    Alcotest.test_case "push fault is atomic" `Quick test_push_fault_atomic;
    Alcotest.test_case "call fault is atomic" `Quick test_call_fault_atomic;
    Alcotest.test_case "ret/ret_imm fault is atomic" `Quick test_ret_fault_atomic;
    Alcotest.test_case "ret counts its stack load" `Quick test_ret_counts_load;
    Alcotest.test_case "jmp_mem counts its target load" `Quick
      test_jmp_mem_counts_load;
    Alcotest.test_case "vscatter counts its stores" `Quick
      test_vscatter_counts_stores;
    Alcotest.test_case "differential: programs" `Quick test_differential_programs;
    Alcotest.test_case "differential: quantum boundaries" `Quick
      test_differential_quantum;
    Alcotest.test_case "privileged write invalidates" `Quick
      test_priv_write_invalidates;
    Alcotest.test_case "self-modifying code stays faithful" `Quick
      test_self_modifying_differential;
    Alcotest.test_case "differential: SPEC kernels end-to-end" `Quick
      test_spec_differential;
    Alcotest.test_case "LibOS: cache on/off identical + stats" `Quick
      test_libos_cache;
  ]
