// Dense redundant-guard workload for the elision pass:
//   occlum_cc examples/guard_heavy.ol -c naive -o guard_heavy.oelf --verify
//   occlum_lint guard_heavy.oelf --elide guard_heavy.elided.oelf
// The naive config guards every access; repeated accesses through the
// same pointer register make most of those guards provably redundant.
global arr[256];
global out[8];

fn main() regs(p, k, acc) {
  p = arr;
  store64(p, 11);
  store64(p + 8, 22);
  store64(p + 16, 33);
  store64(p + 24, 44);
  store64(p + 32, 55);
  store64(p + 40, 66);
  k = 0;
  acc = 0;
  while (k < 6) {
    acc = acc + load64(p + k * 8);
    k = k + 1;
  }
  store64(out, acc);
  print_cstr("sum ");
  print_int(acc);
  puts("\n", 1);
  return 0;
}
