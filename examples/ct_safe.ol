// The constant-time rewrite of ct_leaky.ol: same observable result,
// no secret-dependent branches, addresses, or variable-latency ops.
//
//   occlum_cc examples/ct_safe.ol -o ct_safe.oelf
//   occlum_verify --ct ct_safe.oelf       # must exit 0, zero findings
//
// The branch becomes a branchless masked select; the secret-indexed
// lookup becomes a fixed-stride scan over the whole table that masks
// the one interesting entry in; the modulo disappears. Writing the
// result to public memory is declassification, not a timing channel.
secret global key[8];
global tbl[256];
global out[8];

fn main() regs(s, m, acc) {
  s = load64(key);
  // m = all-ones if (s & 1) else 0; select 1 or 2 without branching
  m = 0 - (s & 1);
  acc = (1 & m) | (2 & ~m);
  // touch every table line at a fixed stride; keep only slot (s & 31).
  // hit = all-ones iff k == (s & 31), computed without a comparison
  // (comparisons-as-values compile to a branch in this toolchain).
  let k = 0;
  while (k < 32) {
    let d = k ^ (s & 31);
    let hit = ((d | (0 - d)) >> 63) - 1;
    acc = acc + (load64(tbl + k * 8) & hit);
    k = k + 1;
  }
  store64(out, acc);
  return 0;
}
