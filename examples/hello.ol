// Occlang source for the CLI workflow:
//   occlum_cc examples/hello.ol -o hello.oelf --verify
//   occlum_verify hello.oelf
//   occlum_run hello.oelf
global counter[8];

fn bump() {
  store64(counter, load64(counter) + 1);
  return load64(counter);
}

fn main() {
  let k = 0;
  while (k < 5) {
    print_cstr("tick ");
    print_int(bump());
    puts("\n", 1);
    k = k + 1;
  }
  return 0;
}
