// A deliberately NON-constant-time kernel: three classic timing leaks
// on a declared secret. Used by the CT checker gate in scripts/check.sh:
//
//   occlum_cc examples/ct_leaky.ol -o ct_leaky.oelf
//   occlum_verify --ct ct_leaky.oelf      # must exit 4 with 3 findings
//
// Leak 1: branch on a secret bit (secret-dependent control flow).
// Leak 2: table lookup indexed by secret bits (cache channel).
// Leak 3: modulo by a secret-derived value (variable-latency division).
secret global key[8];
global tbl[256];
global out[8];

fn main() regs(s, x) {
  s = load64(key);
  if (s & 1) {
    x = 1;
  } else {
    x = 2;
  }
  x = x + load64(tbl + (s & 31) * 8);
  x = x + s % 3;
  store64(out, x);
  return 0;
}
