(* occlum_verify: the independent Occlum verifier as a standalone tool.
   Reads an OELF binary, runs the four verification stages of §5, and on
   success emits the signed binary. Beyond plain verification it hosts
   the static-analysis clients: --ct runs the constant-time taint
   checker over the declared secret regions, --guard-audit reports the
   residual redundant mem_guards.

   Exit codes: 0 verified (and clean, under --ct); 1 rejected by a
   verification stage; 2 malformed input; 3 signature present but
   invalid; 4 constant-time findings. *)

open Cmdliner
module Verify = Occlum_verifier.Verify
module Disasm = Occlum_verifier.Disasm
module Taint = Occlum_analysis.Taint
module Guard_audit = Occlum_analysis.Guard_audit

let read_oelf path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Occlum_oelf.Oelf.of_string s

let write_json path s =
  let oc = open_out path in
  output_string oc s;
  output_char oc '\n';
  close_out oc

let ct_json findings =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"findings\":[";
  List.iteri
    (fun i (f : Taint.finding) ->
      if i > 0 then Buffer.add_char b ',';
      let kind =
        match f.kind with
        | Taint.Secret_branch -> "secret_branch"
        | Taint.Secret_addr -> "secret_addr"
        | Taint.Secret_latency -> "secret_latency"
      in
      Buffer.add_string b
        (Printf.sprintf "{\"addr\":%d,\"kind\":\"%s\",\"insn\":\"%s\"}" f.addr
           kind (String.concat "'" (String.split_on_char '"' f.insn))))
    findings;
  Buffer.add_string b (Printf.sprintf "],\"count\":%d}" (List.length findings));
  Buffer.contents b

let verify input output disasm ct guard_audit json =
  match read_oelf input with
  | exception Occlum_oelf.Oelf.Malformed m ->
      prerr_endline ("malformed OELF: " ^ m);
      exit 2
  | exception Sys_error m ->
      prerr_endline m;
      exit 2
  | oelf -> (
      if oelf.signature <> None && not (Occlum_verifier.Signer.check oelf)
      then begin
        Printf.printf "%s: SIGNATURE INVALID\n" input;
        exit 3
      end;
      match Verify.verify oelf with
      | Error rs ->
          Printf.printf "%s: REJECTED\n" input;
          List.iter
            (fun r -> print_endline ("  " ^ Verify.rejection_to_string r))
            rs;
          exit 1
      | Ok d ->
          Printf.printf "%s: VERIFIED (%d instructions, %d cfi_labels)\n" input
            (Array.length d.Disasm.sorted)
            (List.length d.Disasm.labels);
          if disasm then print_endline (Disasm.listing d);
          (match output with
          | None -> ()
          | Some out ->
              let signed = Occlum_verifier.Signer.sign oelf in
              let oc = open_out_bin out in
              output_string oc (Occlum_oelf.Oelf.to_string signed);
              close_out oc;
              Printf.printf "signed binary written to %s\n" out);
          if guard_audit then begin
            let report = Guard_audit.audit oelf d in
            print_string (Guard_audit.to_text report);
            match json with
            | Some path -> write_json path (Guard_audit.to_json report)
            | None -> ()
          end;
          if ct then begin
            let findings = Taint.check oelf d in
            (match json with
            | Some path when not guard_audit ->
                write_json path (ct_json findings)
            | _ -> ());
            match findings with
            | [] ->
                if oelf.secret_ranges = [] then
                  Printf.printf
                    "%s: no secret regions declared; nothing to check\n" input
                else
                  Printf.printf "%s: CONSTANT-TIME (%d secret region(s))\n"
                    input
                    (List.length oelf.secret_ranges)
            | fs ->
                Printf.printf "%s: %d constant-time finding(s)\n" input
                  (List.length fs);
                List.iter
                  (fun f -> print_endline ("  " ^ Taint.finding_to_string f))
                  fs;
                exit 4
          end)

let input_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.oelf")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "sign" ]
         ~doc:"Write the signed binary here on success.")

let disasm_arg =
  Arg.(value & flag & info [ "d"; "disasm" ] ~doc:"Print the disassembly.")

let ct_arg =
  Arg.(value & flag
       & info [ "ct" ]
           ~doc:"Run the constant-time taint checker over the binary's \
                 declared secret regions; exit 4 on findings.")

let guard_audit_arg =
  Arg.(value & flag
       & info [ "guard-audit" ]
           ~doc:"Report mem_guards the range analysis proves redundant.")

let json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the --ct or --guard-audit report as JSON to $(docv).")

let cmd =
  Cmd.v
    (Cmd.info "occlum_verify"
       ~doc:"Occlum verifier: check MMDSFI compliance of an OELF binary")
    Term.(const verify $ input_arg $ output_arg $ disasm_arg $ ct_arg
          $ guard_audit_arg $ json_arg)

let () = exit (Cmd.eval cmd)
