(* occlum_trace: two tracers in one binary.

   Single-step mode (a positional BINARY.oelf): execute on a bare domain
   and print a per-instruction trace — disassembly, registers of
   interest, bound checks and faults. The debugging companion to
   occlum_run.

     occlum_trace app.oelf --limit 200 --arg 42

   LibOS mode (--chrome-out, no positional argument): boot a full LibOS,
   run the fish pipeline workload with the structured tracer attached,
   and export the events as Chrome trace_event JSON (loadable in
   chrome://tracing or https://ui.perfetto.dev) plus a text report.

     occlum_trace --events=syscall,sched,lifecycle --chrome-out=boot.json *)

open Cmdliner
open Occlum_isa
open Occlum_machine
module R = Occlum_toolchain.Codegen_regs

let guard = Occlum_oelf.Oelf.guard_size
let code_base = 0x10000

(* --- LibOS mode --------------------------------------------------------- *)

let libos_trace ~events ~chrome_out ~capacity ~system ~repeats ~lines =
  let module H = Occlum_workloads.Harness in
  let classes =
    match Occlum_obs.Obs.classes_of_string events with
    | Ok c -> c
    | Error m ->
        prerr_endline ("occlum_trace: " ^ m);
        exit 2
  in
  let system =
    match String.lowercase_ascii system with
    | "occlum" | "sip" -> H.Occlum
    | "graphene" | "eip" -> H.Graphene
    | "linux" -> H.Linux
    | s ->
        prerr_endline ("occlum_trace: unknown system " ^ s);
        exit 2
  in
  let obs = Occlum_obs.Obs.create ~capacity ~events:classes () in
  let os = H.boot ~obs system in
  H.install os system Occlum_workloads.Fish.binaries;
  let res =
    H.timed_run os "/bin/fish"
      ~args:[ string_of_int repeats; string_of_int lines ]
  in
  let oc = open_out chrome_out in
  output_string oc (Occlum_obs.Trace.to_chrome_json obs.Occlum_obs.Obs.trace);
  close_out oc;
  Printf.printf "%s boot + fish(%d,%d): %s, vclock %Ld ns, %d syscalls\n"
    (H.system_name system) repeats lines
    (match res.H.status with
    | Occlum_libos.Os.All_exited -> "all exited"
    | Occlum_libos.Os.Deadlock _ -> "deadlock"
    | Occlum_libos.Os.Quota_exhausted -> "quota exhausted")
    res.H.vclock_ns res.H.syscalls;
  print_newline ();
  print_string (Occlum_obs.Obs.report obs);
  Printf.printf "\nchrome trace written to %s (open in chrome://tracing)\n"
    chrome_out

(* --- single-step mode --------------------------------------------------- *)

let step_trace input limit args watch_regs =
  let oelf =
    let ic = open_in_bin input in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Occlum_oelf.Oelf.of_string s
  in
  let code_region = Occlum_oelf.Oelf.code_region_size oelf in
  let d_base = code_base + code_region + guard in
  let d_size = Occlum_util.Bytes_util.round_up oelf.data_region_size 4096 in
  let mem =
    Mem.create ~size:(Occlum_util.Bytes_util.round_up (d_base + d_size + guard) 4096)
  in
  Mem.map mem ~addr:code_base ~len:code_region ~perm:Mem.perm_rwx;
  Mem.map mem ~addr:d_base ~len:d_size ~perm:Mem.perm_rw;
  let domain_id = 1 in
  let code = Bytes.copy oelf.code in
  Occlum_libos.Loader.patch_labels code domain_id;
  Mem.write_bytes_priv mem ~addr:code_base code;
  Mem.fill_priv mem ~addr:code_base ~len:Occlum_oelf.Oelf.trampoline_reserved '\x00';
  let tramp =
    String.concat ""
      (List.map Codec.encode
         [ Insn.Cfi_label (Int32.of_int domain_id); Insn.Syscall_gate;
           Insn.Pop R.ret_scratch; Insn.Jmp_reg R.ret_scratch ])
  in
  Mem.write_bytes_priv mem ~addr:code_base (Bytes.of_string tramp);
  Mem.write_bytes_priv mem ~addr:d_base oelf.data;
  let page = Mem.read_bytes_priv mem ~addr:d_base ~len:guard in
  Occlum_toolchain.Layout.write_args page ~data_base:d_base args;
  Mem.write_bytes_priv mem ~addr:d_base page;
  let cpu = Cpu.create () in
  cpu.Cpu.pc <- code_base + oelf.entry;
  Cpu.set cpu Reg.sp (Int64.of_int (d_base + oelf.data_region_size - 16));
  Cpu.set cpu R.code_base (Int64.of_int code_base);
  Cpu.set cpu R.data_base (Int64.of_int d_base);
  Cpu.set cpu R.ret_scratch (Int64.of_int code_base);
  Cpu.set_bnd cpu Reg.bnd0
    { lower = Int64.of_int d_base; upper = Int64.of_int (d_base + d_size - 1) };
  let lv = Occlum_libos.Loader.cfi_label_value domain_id in
  Cpu.set_bnd cpu Reg.bnd1 { lower = lv; upper = lv };
  (* a reverse symbol map for nice location labels *)
  let sym_at =
    let sorted =
      List.sort (fun (_, a) (_, b) -> compare a b) oelf.symbols
    in
    fun off ->
      let rec go acc = function
        | (n, o) :: tl when o <= off -> go (Some (n, o)) tl
        | _ -> acc
      in
      match go None sorted with
      | Some (n, o) when off - o < 4096 -> Printf.sprintf "%s+0x%x" n (off - o)
      | _ -> Printf.sprintf "0x%x" off
  in
  let watched =
    List.filter_map
      (fun name ->
        let names =
          List.init Reg.count (fun k -> (Reg.name (Reg.of_int k), Reg.of_int k))
        in
        List.assoc_opt name names)
      watch_regs
  in
  Printf.printf "entry %s, sp=0x%Lx, D=[0x%x,0x%x)\n" (sym_at oelf.entry)
    (Cpu.get cpu Reg.sp) d_base (d_base + d_size);
  let stop = ref None in
  let steps = ref 0 in
  (* single-step through the decoded-block cache (fuel 1 executes exactly
     one instruction) so the trace also reports cache behaviour *)
  let cache = Decode_cache.create () in
  while !stop = None && !steps < limit do
    incr steps;
    let pc = cpu.Cpu.pc in
    let text =
      match Codec.decode (Mem.raw mem) ~pos:pc ~limit:(Mem.size mem) with
      | Ok (insn, _) -> Insn.to_string insn
      | Error e -> "<" ^ Codec.error_to_string e ^ ">"
    in
    let regs =
      String.concat " "
        (List.map
           (fun r -> Printf.sprintf "%s=0x%Lx" (Reg.name r) (Cpu.get cpu r))
           watched)
    in
    Printf.printf "%6d  %-22s %-40s %s\n" !steps (sym_at (pc - code_base)) text regs;
    match Interp.run ~cache mem cpu ~fuel:1 with
    | Interp.Stop_quantum -> ()
    | Interp.Stop_syscall ->
        let nr = Int64.to_int (Cpu.get cpu (Reg.of_int Occlum_abi.Abi.Regs.sys_nr)) in
        Printf.printf "        syscall nr=%d args=(%Ld, %Ld, %Ld)\n" nr
          (Cpu.get cpu (Reg.of_int 2)) (Cpu.get cpu (Reg.of_int 3))
          (Cpu.get cpu (Reg.of_int 4));
        if nr = Occlum_abi.Abi.Sys.exit then
          stop := Some (Printf.sprintf "exit(%Ld)" (Cpu.get cpu (Reg.of_int 2)))
        else Cpu.set cpu R.result 0L
    | Interp.Stop_fault f -> stop := Some ("fault: " ^ Fault.to_string f)
  done;
  Printf.printf "--- %s after %d instructions (%d cycles, %d bound checks)\n"
    (match !stop with Some s -> s | None -> "trace limit reached")
    !steps cpu.Cpu.cycles cpu.Cpu.bound_checks;
  Printf.printf
    "--- decode cache: %d hits, %d misses, %d invalidations (per-insn stepping)\n"
    cpu.Cpu.dcache_hits cpu.Cpu.dcache_misses cpu.Cpu.dcache_invalidations

let trace input limit args watch_regs events chrome_out capacity system repeats
    lines =
  match (chrome_out, input) with
  | Some chrome_out, _ ->
      libos_trace ~events ~chrome_out ~capacity ~system ~repeats ~lines
  | None, Some input -> step_trace input limit args watch_regs
  | None, None ->
      prerr_endline
        "occlum_trace: need BINARY.oelf (single-step mode) or --chrome-out \
         (LibOS mode)";
      exit 2

let cmd =
  Cmd.v
    (Cmd.info "occlum_trace"
       ~doc:
         "Single-step a binary with a full trace, or trace a LibOS boot to \
          Chrome trace_event JSON")
    Term.(
      const trace
      $ Arg.(value & pos 0 (some file) None & info [] ~docv:"BINARY.oelf")
      $ Arg.(value & opt int 100 & info [ "n"; "limit" ] ~doc:"Max instructions.")
      $ Arg.(value & opt_all string [] & info [ "a"; "arg" ])
      $ Arg.(value & opt_all string [ "r0"; "r1"; "sp" ] & info [ "w"; "watch" ]
               ~doc:"Registers to print each step (repeatable).")
      $ Arg.(value & opt string "all"
             & info [ "events" ]
                 ~doc:
                   "Event classes to record (comma-separated: quantum, \
                    syscall, sched, lifecycle, aex, page, dcache, sefs, net; \
                    or all).")
      $ Arg.(value & opt (some string) None
             & info [ "chrome-out" ] ~docv:"FILE"
                 ~doc:
                   "LibOS mode: boot a LibOS, run the fish workload traced, \
                    write Chrome trace_event JSON here.")
      $ Arg.(value & opt int 65536
             & info [ "ring" ] ~doc:"Trace ring capacity (events).")
      $ Arg.(value & opt string "occlum"
             & info [ "system" ] ~doc:"occlum, graphene or linux.")
      $ Arg.(value & opt int 2 & info [ "repeats" ] ~doc:"Fish rounds.")
      $ Arg.(value & opt int 40 & info [ "lines" ] ~doc:"Fish lines per round."))

let () = exit (Cmd.eval cmd)
