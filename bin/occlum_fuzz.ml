(* occlum_fuzz: the deterministic fault-injection property fuzzer.
   Every run is a pure function of (--seed, --cases, --property): the
   JSON report is bit-reproducible, so a failing invocation IS the bug
   report. --shrink minimizes item-level failures with ddmin before
   reporting; --emit-corpus regenerates the checked-in seed corpus.

   Exit codes: 0 all properties passed; 1 failures found; 2 bad usage. *)

open Cmdliner
module Check = Occlum_fuzzing.Check

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  output_char oc '\n';
  close_out oc

let parse_properties names =
  match names with
  | [] -> Ok Check.all_properties
  | names ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | "all" :: rest -> go (List.rev_append Check.all_properties acc) rest
        | n :: rest -> (
            match Check.property_of_name n with
            | Some p -> go (p :: acc) rest
            | None ->
                Error
                  (Printf.sprintf "unknown property %S (known: %s)" n
                     (String.concat ", "
                        (List.map Check.property_name Check.all_properties))))
      in
      go [] names

let main seed cases properties shrink json emit_corpus =
  match parse_properties properties with
  | Error m ->
      prerr_endline m;
      exit 2
  | Ok props -> (
      match emit_corpus with
      | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let written = Check.emit_corpus ~dir ~seed in
          List.iter
            (fun (file, n) -> Printf.printf "%s: %d instructions\n" file n)
            written;
          let ord = Check.emit_orderliness_corpus ~dir ~seed in
          Printf.printf "%s: orderliness scenarios\n" ord;
          Printf.printf "%d corpus files written to %s\n"
            (List.length written + 1)
            dir;
          exit 0
      | None ->
          let report =
            Check.run ~properties:props ~shrink ~seed ~cases ()
          in
          print_string (Check.summary report);
          (match json with
          | Some path -> write_file path (Check.report_to_json report)
          | None -> ());
          exit (if Check.ok report then 0 else 1))

let seed =
  let doc = "Master seed; the whole run is a pure function of it." in
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc)

let cases =
  let doc = "Cases to run per property." in
  Arg.(value & opt int 200 & info [ "cases" ] ~docv:"N" ~doc)

let properties =
  let doc =
    "Property to run (repeatable): codec-roundtrip, cache-equivalence, \
     verifier-soundness, aex-identity, epc-pressure, mc-determinism, \
     guard-elide, jit-equivalence, cluster-orderliness, or all. Default: all."
  in
  Arg.(value & opt_all string [] & info [ "property"; "p" ] ~docv:"PROP" ~doc)

let shrink =
  let doc = "Minimize failing programs with ddmin before reporting." in
  Arg.(value & flag & info [ "shrink" ] ~doc)

let json =
  let doc = "Write the bit-reproducible JSON report to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)

let emit_corpus =
  let doc =
    "Instead of fuzzing, write one minimized program per generator feature \
     into $(docv) (the checked-in test corpus) and exit."
  in
  Arg.(
    value & opt (some string) None & info [ "emit-corpus" ] ~docv:"DIR" ~doc)

let cmd =
  let doc = "deterministic fault-injection property fuzzer" in
  let info = Cmd.info "occlum_fuzz" ~doc in
  Cmd.v info Term.(const main $ seed $ cases $ properties $ shrink $ json $ emit_corpus)

let () = exit (Cmd.eval cmd)
