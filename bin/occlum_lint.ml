(* occlum_lint: the unified static-diagnostics driver over OELF
   binaries. One verification pass feeds every analysis client:

   - OL001 unreachable-block and OL002 dead-flag-update (cheap CFG lints)
   - OL003 redundant-guard, from the guard-elision classifier (the same
     fixpoint the verifier's Stage 4 runs)
   - OL004/5/6, the constant-time taint findings (when the binary
     declares secret regions)

   --elide additionally rewrites the binary with the redundant guards
   dropped, re-verifies it with the unmodified verifier, re-signs it and
   writes it out.

   Exit codes mirror occlum_verify: 0 clean; 1 rejected by a
   verification stage; 2 malformed input; 3 signature present but
   invalid; 4 findings reported; 5 elision pass bug (the rewritten
   binary failed re-verification — never a security event, the verifier
   still rejects it). *)

open Cmdliner
module Verify = Occlum_verifier.Verify
module Disasm = Occlum_verifier.Disasm
module Taint = Occlum_analysis.Taint
module Cfg = Occlum_analysis.Cfg
module Lint = Occlum_analysis.Lint
module Elide = Occlum_analysis.Elide

let read_oelf path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Occlum_oelf.Oelf.of_string s

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  output_char oc '\n';
  close_out oc

let collect_findings (oelf : Occlum_oelf.Oelf.t) d =
  let cfg = Cfg.build ~entry:oelf.entry d in
  let report = Elide.analyze oelf d in
  let ol003 =
    List.filter_map
      (fun (g : Elide.guard) ->
        match g.cls with
        | Elide.Required -> None
        | cls ->
            Some
              { Lint.rule = "OL003"; addr = g.addr; insn = g.text;
                message =
                  Printf.sprintf "%s: %s"
                    (Elide.classification_to_string cls)
                    g.why;
                severity = Lint.Note })
      report.guards
  in
  let taint = List.map Lint.of_taint (Taint.check oelf d) in
  let findings =
    Lint.unreachable_blocks cfg @ Lint.dead_flag_updates cfg @ ol003 @ taint
  in
  (List.sort Lint.compare_findings findings, report)

let lint input sarif_out elide_out =
  match read_oelf input with
  | exception Occlum_oelf.Oelf.Malformed m ->
      prerr_endline ("malformed OELF: " ^ m);
      exit 2
  | exception Sys_error m ->
      prerr_endline m;
      exit 2
  | oelf -> (
      if oelf.signature <> None && not (Occlum_verifier.Signer.check oelf)
      then begin
        Printf.printf "%s: SIGNATURE INVALID\n" input;
        exit 3
      end;
      match Verify.verify oelf with
      | Error rs ->
          Printf.printf "%s: REJECTED\n" input;
          List.iter
            (fun r -> print_endline ("  " ^ Verify.rejection_to_string r))
            rs;
          exit 1
      | Ok d ->
          let findings, report = collect_findings oelf d in
          Printf.printf
            "%s: %d finding(s); %d/%d mem_guard(s) elidable (%d dominated, \
             %d range-proven%s)\n"
            input (List.length findings) report.elided report.total
            report.dominated report.range_proven
            (if report.bailed then "; irreducible CFG: elision bailed"
             else "");
          print_string (Lint.to_text findings);
          (match sarif_out with
          | Some path -> write_file path (Lint.to_sarif ~uri:input findings)
          | None -> ());
          (match elide_out with
          | None -> ()
          | Some out -> (
              match Elide.run oelf with
              | Ok (oelf', r) ->
                  let oc = open_out_bin out in
                  output_string oc (Occlum_oelf.Oelf.to_string oelf');
                  close_out oc;
                  Printf.printf
                    "elided binary written to %s (%d guard(s) dropped, \
                     re-verified, signed)\n"
                    out r.elided
              | Error e ->
                  prerr_endline (Elide.error_to_string e);
                  exit 5));
          if findings <> [] then exit 4)

let input_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.oelf")

let sarif_arg =
  Arg.(value & opt (some string) None
       & info [ "json"; "sarif" ] ~docv:"FILE"
           ~doc:"Write the findings as a SARIF 2.1.0 document to $(docv).")

let elide_arg =
  Arg.(value & opt (some string) None
       & info [ "elide" ] ~docv:"OUT.oelf"
           ~doc:"Drop the provably-redundant mem_guards, re-verify with the \
                 unmodified verifier, re-sign, and write the result to \
                 $(docv). Exit 5 if the rewritten binary fails \
                 re-verification (a pass bug).")

let cmd =
  Cmd.v
    (Cmd.info "occlum_lint"
       ~doc:"Unified static diagnostics (and guard elision) for OELF \
             binaries")
    Term.(const lint $ input_arg $ sarif_arg $ elide_arg)

let () = exit (Cmd.eval cmd)
