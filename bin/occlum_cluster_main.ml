(* occlum_cluster: boot N single-enclave Occlum instances, attest them
   pairwise into a mesh of encrypted channels, run deterministic sharded
   KV traffic across the cluster, and print per-channel retry/handshake
   stats (the cluster analogue of occlum_run's paging-stats footer).

     occlum_cluster                          # 3 nodes, 48 ops
     occlum_cluster -n 4 --ops 200 --seed 9
     occlum_cluster --fault drop --fault-at 5 --fault-times 3
     occlum_cluster --kill 1                 # crash node 1 mid-run,
                                             # revive at 3/4 (failback)

   Everything is driven by the virtual clock and a seed-threaded PRNG,
   so a given command line is bit-reproducible. *)

open Cmdliner
module Cluster = Occlum_cluster.Cluster
module Channel = Occlum_cluster.Channel
module Ht = Occlum_libos.Host_transport
module Inject = Occlum_fuzzing.Inject
module Rng = Occlum_fuzzing.Rng

let fault_of_string = function
  | "drop" -> Some Ht.Drop
  | "duplicate" -> Some Ht.Duplicate
  | "reorder" -> Some Ht.Reorder
  | "corrupt" -> Some (Ht.Corrupt 13)
  | _ -> None

(* first alive node scanning upward from [v]: keeps the traffic's entry
   point valid across --kill *)
let pick_via cl v =
  let n = Cluster.size cl in
  let rec go i =
    if i = n then failwith "no alive node"
    else
      let c = (v + i) mod n in
      if Cluster.alive cl c then c else go (i + 1)
  in
  go 0

let run nodes ops seed fault fault_at fault_times kill digest =
  if nodes < 1 || nodes > 8 then (
    prerr_endline "occlum_cluster: --nodes must be in 1..8";
    exit 2);
  let fault =
    match fault with
    | "none" -> None
    | s -> (
        match fault_of_string s with
        | Some f -> Some f
        | None ->
            prerr_endline
              "occlum_cluster: --fault must be none, drop, duplicate, \
               reorder or corrupt";
            exit 2)
  in
  Occlum_sgx.Attestation.reset_nonce_cache ();
  let cl = Cluster.create ~nodes () in
  let inj = Inject.make () in
  Fun.protect
    ~finally:(fun () ->
      Inject.disarm ();
      Cluster.destroy cl)
  @@ fun () ->
  Printf.printf "cluster: %d node%s attested and meshed (%d handshakes)\n"
    nodes
    (if nodes = 1 then "" else "s")
    (Cluster.handshakes cl);
  (match fault with
  | None -> ()
  | Some f ->
      Inject.arm_channel inj ~times:fault_times ~at:fault_at ~fault:f ();
      Printf.printf
        "host fault armed: frame %d onward (%d frame%s) while the \
         channels absorb or fail closed\n"
        fault_at fault_times
        (if fault_times = 1 then "" else "s"));
  let rng = Rng.of_seed seed in
  let puts = ref 0 and gets = ref 0 and misses = ref 0 and failed = ref 0 in
  for i = 0 to ops - 1 do
    (match kill with
    | Some k when i = ops / 2 && Cluster.alive cl k && Cluster.alive_count cl > 1
      ->
        Cluster.kill_node cl k;
        Printf.printf "node %d killed at op %d (shards fail over)\n" k i
    | Some k when i = 3 * ops / 4 && not (Cluster.alive cl k) ->
        Cluster.revive cl k;
        Printf.printf "node %d revived at op %d (shards fail back)\n" k i
    | _ -> ());
    let via = pick_via cl (Rng.int rng nodes) in
    let key = Printf.sprintf "k%d" (Rng.int rng (max 1 (ops / 2))) in
    if Rng.chance rng 2 3 then begin
      incr puts;
      if not (Cluster.kv_put cl ~via key (Printf.sprintf "v%d@%d" i via))
      then incr failed
    end
    else begin
      incr gets;
      match Cluster.kv_get cl ~via key with
      | Some _ -> ()
      | None -> incr misses
    end
  done;
  Printf.printf
    "---\n\
     %d ops (%d put / %d get, %d misses); %d rpcs, %d rpc failures, %d \
     failovers, %d injected faults\n"
    ops !puts !gets !misses (Cluster.rpcs cl)
    (Cluster.rpc_failures cl) (Cluster.failovers cl) inj.Inject.chan;
  List.iter
    (fun (s : Cluster.chan_stats) ->
      Printf.printf
        "channel %d<->%d epoch %d %-6s %4d sent / %4d recvd, %d retries, \
         %d dups, %d mac failures\n"
        s.Cluster.cs_a s.Cluster.cs_b s.Cluster.cs_epoch s.Cluster.cs_state
        s.Cluster.cs_sent s.Cluster.cs_received s.Cluster.cs_retries
        s.Cluster.cs_duplicates s.Cluster.cs_mac_failures)
    (Cluster.chan_stats cl);
  List.iter
    (fun i ->
      if Cluster.alive cl i then
        Printf.printf "node %d: vclock %Ld us\n" i
          (Int64.div (Cluster.node_clock cl i) 1000L))
    (List.init nodes Fun.id);
  if digest then Printf.printf "kv digest: %s\n" (Cluster.kv_digest cl);
  if !failed > 0 then begin
    Printf.printf "ERROR: %d puts failed outright\n" !failed;
    exit 1
  end

let nodes_arg =
  Arg.(value & opt int 3 & info [ "n"; "nodes" ]
         ~doc:"Cluster size (1..8): one enclave instance per node, full \
               mesh of attested channels.")

let ops_arg =
  Arg.(value & opt int 48 & info [ "ops" ]
         ~doc:"KV operations to run (2:1 put:get mix over a shared key \
               space, routed through random alive nodes).")

let seed_arg =
  Arg.(value & opt int64 7L & info [ "seed" ]
         ~doc:"PRNG seed for the traffic mix; a fixed seed makes the run \
               bit-reproducible.")

let fault_arg =
  Arg.(value & opt string "none" & info [ "fault" ]
         ~doc:"Host transport fault to inject: none, drop, duplicate, \
               reorder or corrupt. The untrusted host applies it; the \
               channels absorb it or fail closed.")

let fault_at_arg =
  Arg.(value & opt int 3 & info [ "fault-at" ]
         ~doc:"First transported frame the fault applies to (1-based).")

let fault_times_arg =
  Arg.(value & opt int 1 & info [ "fault-times" ]
         ~doc:"How many consecutive frames the fault applies to.")

let kill_arg =
  Arg.(value & opt (some int) None & info [ "kill" ]
         ~doc:"Crash this node halfway through the run (its shards fail \
               over) and revive it at the 3/4 mark (they fail back).")

let digest_arg =
  Arg.(value & flag & info [ "digest" ]
         ~doc:"Print the cluster-level KV digest (sha256 over the sorted \
               union of every alive node's /kv tree).")

let cmd =
  Cmd.v
    (Cmd.info "occlum_cluster"
       ~doc:"Boot an attested enclave cluster and run sharded KV traffic")
    Term.(const run $ nodes_arg $ ops_arg $ seed_arg $ fault_arg
          $ fault_at_arg $ fault_times_arg $ kill_arg $ digest_arg)

let () = exit (Cmd.eval cmd)
