(* occlum_run: boot the Occlum LibOS in a fresh simulated enclave,
   install the given signed binaries on the encrypted FS, spawn the first
   one and run the system to completion. *)

open Cmdliner

(* "128K" / "8M" / "1G" / plain bytes -> pages, rounded up *)
let parse_epc_size s =
  let fail () =
    prerr_endline ("bad --epc-size: " ^ s ^ " (use e.g. 512K, 8M, 1G)");
    exit 2
  in
  let n = String.length s in
  if n = 0 then fail ();
  let mult, digits =
    match s.[n - 1] with
    | 'k' | 'K' -> (1024, String.sub s 0 (n - 1))
    | 'm' | 'M' -> (1024 * 1024, String.sub s 0 (n - 1))
    | 'g' | 'G' -> (1024 * 1024 * 1024, String.sub s 0 (n - 1))
    | '0' .. '9' -> (1, s)
    | _ -> fail ()
  in
  match int_of_string_opt digits with
  | Some v when v > 0 ->
      let bytes = v * mult in
      (bytes + Occlum_sgx.Epc.page_size - 1) / Occlum_sgx.Epc.page_size
  | _ -> fail ()

let run binaries args mode_name fs_image save_fs epc_size no_paging cores jit
    jit_elide =
  let mode =
    match mode_name with
    | "sip" | "occlum" -> Occlum_libos.Os.Sip
    | "eip" | "graphene" -> Occlum_libos.Os.Eip
    | "linux" -> Occlum_libos.Os.Linux
    | other ->
        prerr_endline ("unknown mode: " ^ other ^ " (sip|eip|linux)");
        exit 2
  in
  if binaries = [] then begin
    prerr_endline "no binaries given";
    exit 2
  end;
  if cores < 1 then begin
    prerr_endline "--cores must be >= 1";
    exit 2
  end;
  let config =
    { Occlum_libos.Os.default_config with mode; cores; jit; jit_elide }
  in
  let host_fs =
    match fs_image with
    | Some path when Sys.file_exists path ->
        Some (Occlum_libos.Sefs.Host_store.load path)
    | _ -> None
  in
  (* EPC demand paging is on by default (the robust configuration): a
     working set above --epc-size degrades to EWB/ELDU paging instead of
     dying on ENOMEM. --no-paging restores the hard-capped SGX1 pool. *)
  let epc =
    let pages =
      match epc_size with
      | Some s -> parse_epc_size s
      | None -> Occlum_sgx.Epc.default_size / Occlum_sgx.Epc.page_size
    in
    let epc = Occlum_sgx.Epc.create ~size:(pages * Occlum_sgx.Epc.page_size) () in
    if not no_paging then Occlum_sgx.Epc.enable_paging epc;
    epc
  in
  let os =
    try Occlum_libos.Os.boot ~config ~epc ?host_fs ()
    with Occlum_sgx.Epc.Out_of_epc ->
      prerr_endline
        "boot failed: out of EPC (raise --epc-size, or drop --no-paging to \
         page instead)";
      exit 1
  in
  let install path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    let oelf = Occlum_oelf.Oelf.of_string s in
    let name = "/bin/" ^ Filename.remove_extension (Filename.basename path) in
    Occlum_libos.Os.install_binary os name oelf;
    name
  in
  let names = List.map install binaries in
  let first = List.hd names in
  Printf.printf "booted (%s mode, %d core%s); installed: %s\nspawning %s %s\n---\n%!"
    mode_name cores
    (if cores = 1 then "" else "s")
    (String.concat " " names) first (String.concat " " args);
  (match Occlum_libos.Os.spawn os ~parent_pid:0 ~path:first ~args with
  | exception Occlum_libos.Os.Spawn_error e ->
      Printf.eprintf "spawn failed: errno %d\n" e;
      exit 1
  | _pid -> ());
  let status = Occlum_libos.Os.run ~max_steps:50_000_000 os in
  print_string (Occlum_libos.Os.console_output os);
  Printf.printf "---\n%s; %d syscalls, %d spawns, vclock %Ld us\n"
    (match status with
    | Occlum_libos.Os.All_exited -> "all processes exited"
    | Occlum_libos.Os.Deadlock pids ->
        "DEADLOCK: pids "
        ^ String.concat "," (List.map string_of_int pids)
    | Occlum_libos.Os.Quota_exhausted -> "step quota exhausted")
    os.Occlum_libos.Os.syscalls os.Occlum_libos.Os.spawns
    (Int64.div (Occlum_libos.Os.clock os) 1000L);
  List.iter
    (fun (pid, f) ->
      Printf.printf "fault: pid %d: %s\n" pid (Occlum_machine.Fault.to_string f))
    os.Occlum_libos.Os.faults;
  (match Occlum_sgx.Epc.paging_stats epc with
  | Some s when s.Occlum_sgx.Epc.ewb > 0 || s.Occlum_sgx.Epc.eldu > 0 ->
      Printf.printf "epc paging: %d evictions, %d reloads, %d integrity failures\n"
        s.Occlum_sgx.Epc.ewb s.Occlum_sgx.Epc.eldu
        s.Occlum_sgx.Epc.integrity_failures
  | _ -> ());
  match save_fs with
  | None -> ()
  | Some path ->
      Occlum_libos.Os.flush_fs os;
      Occlum_libos.Sefs.Host_store.save os.Occlum_libos.Os.sefs.Occlum_libos.Sefs.host path;
      Printf.printf "file system saved to %s\n" path

let binaries_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"BINARY.oelf...")

let args_arg =
  Arg.(value & opt_all string [] & info [ "a"; "arg" ]
         ~doc:"Argument passed to the first binary (repeatable).")

let mode_arg =
  Arg.(value & opt string "sip" & info [ "m"; "mode" ]
         ~doc:"Execution model: sip (Occlum), eip (Graphene-SGX), linux.")

let fs_arg =
  Arg.(value & opt (some string) None & info [ "fs" ]
         ~doc:"Boot over an existing encrypted FS image (see occlum_sefs).")

let save_fs_arg =
  Arg.(value & opt (some string) None & info [ "save-fs" ]
         ~doc:"Flush and save the encrypted FS image on shutdown.")

let epc_size_arg =
  Arg.(value & opt (some string) None & info [ "epc-size" ]
         ~doc:"EPC pool size (accepts K/M/G suffixes, e.g. 512K). \
               Default: the 93 MiB usable EPC of SGX1-era parts.")

let no_paging_arg =
  Arg.(value & flag & info [ "no-paging" ]
         ~doc:"Disable EPC demand paging: exceeding the pool is a hard \
               ENOMEM instead of EWB/ELDU eviction.")

let cores_arg =
  Arg.(value & opt int 1 & info [ "cores" ]
         ~doc:"Simulated vCPUs. 1 (default) is the sequential scheduler; \
               N runs SIP quanta in parallel on OCaml domains with \
               per-core run queues and work stealing. Bit-reproducible \
               for a fixed N.")

let jit_arg =
  Arg.(
    value
    & vflag true
        [
          ( true,
            info [ "jit" ]
              ~doc:
                "Promote hot basic blocks to pre-compiled closure chains \
                 (default). Architecturally bit-identical to the \
                 interpreter tiers." );
          ( false,
            info [ "no-jit" ]
              ~doc:"Disable the block-JIT tier (decode cache only)." );
        ])

let jit_elide_arg =
  Arg.(
    value
    & flag
    & info [ "jit-elide" ]
        ~doc:
          "Feed verified guard-elision facts to the JIT at spawn time so \
           provably-redundant MPX checks are skipped at translation time.")

let cmd =
  Cmd.v
    (Cmd.info "occlum_run" ~doc:"Run OELF binaries on the Occlum LibOS")
    Term.(const run $ binaries_arg $ args_arg $ mode_arg $ fs_arg $ save_fs_arg
          $ epc_size_arg $ no_paging_arg $ cores_arg $ jit_arg $ jit_elide_arg)

let () = exit (Cmd.eval cmd)
