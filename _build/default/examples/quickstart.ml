(* Quickstart: the whole Occlum pipeline in one page.

   1. Write a multi-process program in Occlang (the toolchain's input
      language — the stand-in for C in this reproduction).
   2. [Occlum.build] compiles it with MMDSFI instrumentation, runs the
      4-stage verifier and signs the binary.
   3. [Occlum.boot] creates the (simulated) enclave with its MMDSFI
      domain slots and one LibOS instance.
   4. [Occlum.exec] spawns it as an SFI-Isolated Process (SIP).

   Run with: dune exec examples/quickstart.exe *)

open Occlum.Ast

let greeter =
  Occlum.Runtime.program
    [
      func "main" []
        [
          Expr (Call ("print_cstr", [ Str "Hello from a SIP! pid=" ]));
          Expr (Call ("print_int", [ Call ("getpid", []) ]));
          Expr (Call ("puts", [ Str "\n"; i 1 ]));
          Return (i 0);
        ];
    ]

(* A parent that spawns the greeter three times: on Occlum this is three
   cheap in-enclave SIP creations, not three enclave builds. *)
let parent =
  Occlum.Runtime.program
    [
      func "main" []
        [
          Let ("k", i 0);
          While
            ( v "k" <: i 3,
              [
                Let ("pid", Call ("spawn0", [ Str "/bin/greeter"; i 12 ]));
                If (v "pid" <: i 0, [ Return (i 1) ], []);
                Expr (Call ("waitpid", [ v "pid"; i 0 ]));
                Assign ("k", v "k" +: i 1);
              ] );
          Expr (Call ("print_cstr", [ Str "spawned and reaped 3 SIPs\n" ]));
          Return (i 0);
        ];
    ]

let () =
  print_endline "== Occlum quickstart ==";
  (* build = compile + instrument + verify + sign *)
  let greeter_bin = Occlum.build_exn greeter in
  let parent_bin = Occlum.build_exn parent in
  Printf.printf "built and verified: greeter (%d B code), parent (%d B code)\n"
    (Bytes.length greeter_bin.Occlum.Oelf.code)
    (Bytes.length parent_bin.Occlum.Oelf.code);
  (* one enclave, one LibOS, many SIPs *)
  let sys = Occlum.boot () in
  Occlum.install sys ~path:"/bin/greeter" greeter_bin;
  Occlum.install sys ~path:"/bin/parent" parent_bin;
  let r = Occlum.exec sys "/bin/parent" in
  print_string r.Occlum.console;
  Printf.printf "parent exited with %d\n" r.Occlum.exit_code;
  (* show what the verifier protects against: an uninstrumented build *)
  match Occlum.build ~config:Occlum.Codegen.bare greeter with
  | Error (Occlum.Rejected (r :: _)) ->
      print_endline
        ("uninstrumented build rejected, as it must be:\n  "
        ^ Occlum.Verify.rejection_to_string r)
  | _ -> failwith "the verifier should have rejected the bare build"
