examples/encrypted_fs.mli:
