examples/encrypted_fs.ml: Array Bytes Hashtbl Occlum Occlum_libos Occlum_util Printf
