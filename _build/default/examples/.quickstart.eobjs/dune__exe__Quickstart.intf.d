examples/quickstart.mli:
