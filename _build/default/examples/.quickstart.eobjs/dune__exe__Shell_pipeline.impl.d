examples/shell_pipeline.ml: Int64 Occlum_workloads Printf Unix
