examples/quickstart.ml: Bytes Occlum Printf
