examples/web_server.ml: List Occlum_workloads Printf
