(* Web server: the paper's lighttpd scenario (§9.1). A master SIP opens
   the listening socket and spawns two workers that inherit it — the
   configuration of Figure 5c — while this harness plays ApacheBench
   from outside the enclave and reports throughput for all three
   execution models.

   Run with: dune exec examples/web_server.exe *)

module H = Occlum_workloads.Harness

let () =
  print_endline "== lighttpd-style master + 2 workers, 10 KiB pages ==";
  Printf.printf "%-14s %10s %14s\n" "system" "served" "req/s (vclock)";
  List.iter
    (fun sys ->
      let r = H.run_httpd ~workers:2 ~concurrency:8 ~requests:48 sys in
      Printf.printf "%-14s %10d %14.0f\n%!" (H.system_name sys) r.served
        r.throughput_vclock)
    [ H.Linux; H.Occlum; H.Graphene ]
