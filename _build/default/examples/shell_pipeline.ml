(* Shell pipeline: the paper's fish scenario (§9.1) as an API example.

   A shell SIP builds the four-stage pipeline

       gen 50 | tr | filter A | wc

   entirely out of SIPs connected with in-enclave pipes, using
   posix_spawn-style dup2 redirection. The same workload also runs on the
   Graphene-SGX (EIP) model so the cost difference of Table 1 is visible.

   Run with: dune exec examples/shell_pipeline.exe *)

module H = Occlum_workloads.Harness

let show sys =
  let t0 = Unix.gettimeofday () in
  let r = H.run_fish ~repeats:2 ~lines:50 sys in
  Printf.printf "%-14s wall %6.1f ms  vclock %6Ld us  %d processes spawned\n"
    (H.system_name sys)
    ((Unix.gettimeofday () -. t0) *. 1000.)
    (Int64.div r.vclock_ns 1000L)
    r.spawns;
  r.console

let () =
  print_endline "== gen | tr | filter | wc, twice, as SIPs ==";
  let occlum_out = show H.Occlum in
  Printf.printf "pipeline output (bytes surviving the filter): %s"
    occlum_out;
  print_endline "\n== the same pipeline on the Graphene-SGX (EIP) model ==";
  let graphene_out = show H.Graphene in
  assert (occlum_out = graphene_out);
  print_endline "same output — at a very different price."
