(* The writable encrypted file system (§6), the capability EIP-based
   LibOSes lack (Table 1):

   - several SIPs share one consistent, writable, encrypted FS view;
   - all host-visible bytes are ciphertext;
   - host tampering is detected on the next read;
   - the volume persists across LibOS reboots (remounts).

   Run with: dune exec examples/encrypted_fs.exe *)

open Occlum.Ast
module Sefs = Occlum_libos.Sefs

let writer =
  Occlum.Runtime.program
    [
      func "main" []
        [
          Let ("fd", Call ("open", [ Str "/notes/diary.txt"; i 16; i 577 ]));
          (* 577 = O_CREAT|O_WRONLY|O_TRUNC *)
          Expr (Call ("write", [ v "fd"; Str "my secret diary entry"; i 21 ]));
          Expr (Call ("close", [ v "fd" ]));
          Return (i 0);
        ];
    ]

let reader =
  Occlum.Runtime.program
    [
      func "main" []
        [
          Let ("fd", Call ("open", [ Str "/notes/diary.txt"; i 16; i 0 ]));
          If (v "fd" <: i 0, [ Return (i 1) ], []);
          Let ("buf", Call ("malloc", [ i 64 ]));
          Let ("n", Call ("read", [ v "fd"; v "buf"; i 64 ]));
          Expr (Call ("puts", [ v "buf"; v "n" ]));
          Expr (Call ("puts", [ Str "\n"; i 1 ]));
          Return (i 0);
        ];
    ]

let () =
  print_endline "== SEFS: writable, encrypted, shared ==";
  let sys = Occlum.boot () in
  let os = Occlum.os sys in
  Sefs.ensure_parents os.Occlum.Os.sefs "/notes/x";
  Occlum.install sys ~path:"/bin/writer" (Occlum.build_exn writer);
  Occlum.install sys ~path:"/bin/reader" (Occlum.build_exn reader);
  (* one SIP writes, another reads: a single consistent view *)
  ignore (Occlum.exec sys "/bin/writer");
  let r = Occlum.exec sys "/bin/reader" in
  Printf.printf "reader SIP saw: %s" r.Occlum.stdout;

  (* the host only ever sees ciphertext *)
  Sefs.flush os.Occlum.Os.sefs;
  let leaked = ref false in
  Hashtbl.iter
    (fun _ (e : Sefs.Host_store.entry) ->
      if
        Occlum_util.Bytes_util.contains ~needle:"secret"
          (Bytes.of_string e.Sefs.Host_store.cipher)
      then leaked := true)
    os.Occlum.Os.sefs.Sefs.host.Sefs.Host_store.blocks;
  Printf.printf "host sees plaintext: %b\n" !leaked;

  (* tampering is detected: flip a bit in the diary's own host block *)
  (match Sefs.lookup os.Occlum.Os.sefs "/notes/diary.txt" with
  | Some node when Array.length node.Sefs.blocks > 0 ->
      ignore (Sefs.Host_store.tamper os.Occlum.Os.sefs.Sefs.host node.Sefs.blocks.(0))
  | _ -> print_endline "UNEXPECTED: diary has no blocks");
  Hashtbl.reset os.Occlum.Os.sefs.Sefs.cache;
  (match Sefs.read_path os.Occlum.Os.sefs "/notes/diary.txt" with
  | exception Sefs.Corrupt m -> Printf.printf "tampering detected: %s\n" m
  | _ -> print_endline "UNEXPECTED: tampering went unnoticed");

  (* persistence: a fresh LibOS boot over the same host store *)
  print_endline "rebooting the LibOS over the same (untampered) host volume...";
  let sys2 = Occlum.boot () in
  let os2 = Occlum.os sys2 in
  Sefs.ensure_parents os2.Occlum.Os.sefs "/notes/x";
  Occlum.install sys2 ~path:"/bin/writer" (Occlum.build_exn writer);
  Occlum.install sys2 ~path:"/bin/reader" (Occlum.build_exn reader);
  ignore (Occlum.exec sys2 "/bin/writer");
  Sefs.flush os2.Occlum.Os.sefs;
  let os3 =
    Occlum_libos.Os.boot
      ~config:Occlum_libos.Os.default_config
      ~host_fs:os2.Occlum.Os.sefs.Sefs.host ()
  in
  (match Sefs.read_path os3.Occlum.Os.sefs "/notes/diary.txt" with
  | Ok s -> Printf.printf "after remount: %S\n" s
  | Error e -> Printf.printf "remount failed: errno %d\n" e)
