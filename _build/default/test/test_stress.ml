(* Stress / chaos integration tests: many SIPs exercising the scheduler,
   pipes, files, signals and spawn concurrently, with deterministic
   expected results. These shake out interleaving bugs the targeted unit
   tests cannot reach. *)

open Occlum_toolchain.Ast
module Sys = Occlum_abi.Abi.Sys
module F = Occlum_abi.Abi.Open_flags
module Os = Occlum_libos.Os

let rt = Occlum_toolchain.Runtime.program

let build prog =
  match
    Occlum_verifier.Verify.verify_and_sign
      (Occlum_toolchain.Compile.compile_exn ~config:Occlum_toolchain.Codegen.sfi prog)
  with
  | Ok s -> s
  | Error rs -> failwith (Occlum_verifier.Verify.rejection_to_string (List.hd rs))

(* A worker that appends its id to a shared file [rounds] times, yielding
   between writes to force interleaving, then exits with its id. *)
let appender =
  rt
    [
      func "main" []
        [
          Let ("id", Call ("atoi", [ Call ("argv", [ i 0 ]) ]));
          Let ("rounds", i 0);
          If (Call ("argc", []) >: i 1,
              [ Assign ("rounds", Call ("atoi", [ Call ("argv", [ i 1 ]) ])) ], []);
          Let ("fd",
               Call ("open", [ Str "/shared.log"; i 11;
                               i (F.creat lor F.append) ]));
          If (v "fd" <: i 0, [ Return (i 100) ], []);
          Let ("k", i 0);
          Let ("ch", Global_addr "_rt_misc_buf");
          Store1 (v "ch", i 48 +: v "id");
          While
            ( v "k" <: v "rounds",
              [
                Expr (Call ("write", [ v "fd"; v "ch"; i 1 ]));
                Expr (Call ("yield", []));
                Assign ("k", v "k" +: i 1);
              ] );
          Expr (Call ("close", [ v "fd" ]));
          Return (v "id");
        ];
    ]

let spawner =
  rt
    ~globals:[ ("pids", 128) ]
    [
      func "main" []
        [
          Let ("n", Call ("atoi", [ Call ("argv", [ i 0 ]) ]));
          Let ("rounds", Call ("atoi", [ Call ("argv", [ i 1 ]) ]));
          Let ("k", i 0);
          While
            ( v "k" <: v "n",
              [
                (* argv block: "<id>\0<rounds>\0" *)
                Let ("blk", Global_addr "_rt_spawn_buf");
                Let ("p1", Call ("itoa", [ v "k" ]));
                Let ("l1", (Global_addr "_rt_itoa_buf" +: i 31) -: v "p1");
                Expr (Call ("memcpy", [ v "blk"; v "p1"; v "l1" ]));
                Store1 (v "blk" +: v "l1", i 0);
                Let ("p2", Call ("itoa", [ v "rounds" ]));
                Let ("l2", (Global_addr "_rt_itoa_buf" +: i 31) -: v "p2");
                Expr (Call ("memcpy", [ v "blk" +: v "l1" +: i 1; v "p2"; v "l2" ]));
                Store1 (v "blk" +: v "l1" +: i 1 +: v "l2", i 0);
                Let ("pid",
                     Call ("spawn_argv",
                           [ Str "/bin/appender"; i 13; v "blk";
                             v "l1" +: v "l2" +: i 2 ]));
                If (v "pid" <: i 0, [ Return (i 99) ], []);
                Store (Global_addr "pids" +: (v "k" *: i 8), v "pid");
                Assign ("k", v "k" +: i 1);
              ] );
          (* reap them all; sum of exit codes = 0+1+...+n-1 *)
          Let ("sum", i 0);
          Assign ("k", i 0);
          While
            ( v "k" <: v "n",
              [
                Let ("st", Global_addr "_rt_misc_buf");
                Expr (Call ("waitpid",
                            [ Load (Global_addr "pids" +: (v "k" *: i 8)); v "st" ]));
                Assign ("sum", v "sum" +: Load (v "st"));
                Assign ("k", v "k" +: i 1);
              ] );
          Return (v "sum");
        ];
    ]

let test_concurrent_appenders () =
  let os = Os.boot () in
  Os.install_binary os "/bin/appender" (build appender);
  Os.install_binary os "/bin/app" (build spawner);
  let n = 6 and rounds = 20 in
  let pid =
    Os.spawn os ~parent_pid:0 ~path:"/bin/app"
      ~args:[ string_of_int n; string_of_int rounds ]
  in
  (match Os.run ~max_steps:5_000_000 os with
  | Os.All_exited -> ()
  | Os.Deadlock l ->
      Alcotest.fail ("deadlock " ^ String.concat "," (List.map string_of_int l))
  | Os.Quota_exhausted -> Alcotest.fail "quota");
  (match Os.find_proc os pid with
  | Some p -> Alcotest.(check int) "sum of ids" (n * (n - 1) / 2) p.exit_code
  | None -> Alcotest.fail "spawner vanished");
  (* every byte every worker wrote is in the shared file *)
  match Occlum_libos.Sefs.read_path os.Os.sefs "/shared.log" with
  | Ok log ->
      Alcotest.(check int) "total bytes" (n * rounds) (String.length log);
      for id = 0 to n - 1 do
        let c = Char.chr (Char.code '0' + id) in
        let count = ref 0 in
        String.iter (fun ch -> if ch = c then incr count) log;
        Alcotest.(check int) (Printf.sprintf "worker %d wrote all" id) rounds !count
      done;
      (* the writes really interleaved (appenders yield between writes) *)
      let changes = ref 0 in
      String.iteri
        (fun k c -> if k > 0 && log.[k - 1] <> c then incr changes)
        log;
      Alcotest.(check bool) "interleaved" true (!changes > n)
  | Error e -> Alcotest.fail (Printf.sprintf "no shared log: errno %d" e)

(* A three-generation process tree: each node spawns two children until
   depth 0, then everyone reports up through exit codes. *)
let tree_prog =
  rt
    [
      func "main" []
        [
          Let ("depth", Call ("atoi", [ Call ("argv", [ i 0 ]) ]));
          If (v "depth" =: i 0, [ Return (i 1) ], []);
          Let ("d1", Call ("itoa", [ v "depth" -: i 1 ]));
          Let ("l1", (Global_addr "_rt_itoa_buf" +: i 31) -: v "d1");
          Let ("a", Call ("spawn1", [ Str "/bin/app"; i 8; v "d1"; v "l1" ]));
          Let ("d2", Call ("itoa", [ v "depth" -: i 1 ]));
          Let ("l2", (Global_addr "_rt_itoa_buf" +: i 31) -: v "d2");
          Let ("b", Call ("spawn1", [ Str "/bin/app"; i 8; v "d2"; v "l2" ]));
          If (Binop (Or, v "a" <: i 0, v "b" <: i 0), [ Return (i 90) ], []);
          Let ("st", Global_addr "_rt_misc_buf");
          Expr (Call ("waitpid", [ v "a"; v "st" ]));
          Let ("sum", Load (v "st"));
          Expr (Call ("waitpid", [ v "b"; v "st" ]));
          Return (v "sum" +: Load (v "st") +: i 1);
        ];
    ]

let test_process_tree () =
  (* depth 3 needs 1+2+4+8 = 15 live processes at peak *)
  let config =
    { Os.default_config with
      domains = { Occlum_libos.Domain_mgr.default_config with max_domains = 16 } }
  in
  let os = Os.boot ~config () in
  Os.install_binary os "/bin/app" (build tree_prog);
  let pid = Os.spawn os ~parent_pid:0 ~path:"/bin/app" ~args:[ "3" ] in
  (match Os.run ~max_steps:5_000_000 os with
  | Os.All_exited -> ()
  | _ -> Alcotest.fail "tree did not finish");
  match Os.find_proc os pid with
  | Some p ->
      (* a full binary tree of depth 3: 2^4 - 1 = 15 nodes *)
      Alcotest.(check int) "node count" 15 p.exit_code
  | None -> Alcotest.fail "root vanished"

(* Slot churn: spawn and reap sequentially far more processes than there
   are domain slots; every slot gets reused and rescrubbed. *)
let test_slot_churn () =
  let config =
    { Os.default_config with
      domains = { Occlum_libos.Domain_mgr.default_config with max_domains = 3 } }
  in
  let os = Os.boot ~config () in
  Os.install_binary os "/bin/appender" (build appender);
  let churn =
    rt
      [
        func "main" []
          [
            Let ("k", i 0);
            Let ("ok", i 0);
            While
              ( v "k" <: i 25,
                [
                  Let ("pid", Call ("spawn1", [ Str "/bin/appender"; i 13; Str "5"; i 1 ]))
                  (* id=5, rounds default 0 -> argv(1) parses "" = 0 *);
                  If (v "pid" >: i 0,
                      [
                        Expr (Call ("waitpid", [ v "pid"; i 0 ]));
                        Assign ("ok", v "ok" +: i 1);
                      ],
                      []);
                  Assign ("k", v "k" +: i 1);
                ] );
            Return (v "ok");
          ];
      ]
  in
  Os.install_binary os "/bin/app" (build churn);
  let pid = Os.spawn os ~parent_pid:0 ~path:"/bin/app" ~args:[] in
  (match Os.run ~max_steps:10_000_000 os with
  | Os.All_exited -> ()
  | _ -> Alcotest.fail "churn did not finish");
  match Os.find_proc os pid with
  | Some p -> Alcotest.(check int) "all 25 spawns succeeded" 25 p.exit_code
  | None -> Alcotest.fail "churn driver vanished"

(* The same churn under SGX2: EPC usage must return to baseline. *)
let test_slot_churn_sgx2 () =
  let config =
    { Os.default_config with
      sgx2 = true;
      domains = { Occlum_libos.Domain_mgr.default_config with max_domains = 3 } }
  in
  let os = Os.boot ~config () in
  Os.install_binary os "/bin/appender" (build appender);
  let baseline = Occlum_sgx.Epc.used_pages os.Os.epc in
  for _ = 1 to 10 do
    let pid = Os.spawn os ~parent_pid:0 ~path:"/bin/appender" ~args:[ "1"; "2" ] in
    ignore (Os.wait_pid_exit ~max_steps:500_000 os pid)
  done;
  Alcotest.(check int) "EPC back to baseline" baseline
    (Occlum_sgx.Epc.used_pages os.Os.epc)

let suite =
  [
    Alcotest.test_case "concurrent appenders interleave" `Slow
      test_concurrent_appenders;
    Alcotest.test_case "process tree (15 nodes)" `Slow test_process_tree;
    Alcotest.test_case "domain slot churn" `Slow test_slot_churn;
    Alcotest.test_case "slot churn under SGX2" `Slow test_slot_churn_sgx2;
  ]
