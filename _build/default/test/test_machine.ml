(* Machine tests: paged memory permissions, guard-page faults, MPX bound
   semantics, the interpreter's arithmetic/control behaviour, and
   execution stops (syscall gate, faults, quantum). *)

open Occlum_machine
open Occlum_isa

let setup ?(code_perm = Mem.perm_rwx) insns =
  let mem = Mem.create ~size:(64 * 4096) in
  (* code at page 1, data at page 8, guard (unmapped) at page 12 *)
  Mem.map mem ~addr:4096 ~len:4096 ~perm:code_perm;
  Mem.map mem ~addr:(8 * 4096) ~len:(4 * 4096) ~perm:Mem.perm_rw;
  let code, _ = Codec.encode_program insns in
  Mem.write_bytes_priv mem ~addr:4096 code;
  let cpu = Cpu.create () in
  cpu.Cpu.pc <- 4096;
  Cpu.set cpu Reg.sp (Int64.of_int ((12 * 4096) - 16));
  (mem, cpu)

let run ?(fuel = 1000) insns =
  let mem, cpu = setup insns in
  let stop = Interp.run mem cpu ~fuel in
  (stop, cpu, mem)

let expect_fault name insns pred =
  match run insns with
  | Interp.Stop_fault f, _, _ when pred f -> ()
  | stop, _, _ ->
      Alcotest.fail
        (Printf.sprintf "%s: expected fault, got %s" name (Interp.stop_to_string stop))

let data = 8 * 4096

let test_mem_permissions () =
  let mem = Mem.create ~size:8192 in
  Mem.map mem ~addr:0 ~len:4096 ~perm:Mem.perm_ro;
  Alcotest.(check bool) "mapped" true (Mem.perm_at mem 0 <> None);
  Alcotest.(check bool) "unmapped" true (Mem.perm_at mem 4096 = None);
  ignore (Mem.read_u8 mem 10);
  Alcotest.check_raises "write to ro"
    (Fault.Fault (Fault.Page_fault { addr = 10; access = Fault.Write }))
    (fun () -> Mem.write_u8 mem 10 1);
  Alcotest.check_raises "read unmapped"
    (Fault.Fault (Fault.Page_fault { addr = 4096; access = Fault.Read }))
    (fun () -> ignore (Mem.read_u8 mem 4096));
  (* span crossing into an unmapped page faults *)
  Alcotest.check_raises "straddling read"
    (Fault.Fault (Fault.Page_fault { addr = 4092; access = Fault.Read }))
    (fun () -> ignore (Mem.read_u64 mem 4092));
  Mem.unmap mem ~addr:0 ~len:4096;
  Alcotest.(check bool) "unmapped after unmap" true (Mem.perm_at mem 0 = None)

let test_alu () =
  let prog v =
    [ Insn.Mov_imm (Reg.r1, 100L); Insn.Alu (v, Reg.r1, O_imm 7L); Insn.Syscall_gate ]
  in
  let results =
    List.map
      (fun op ->
        let _, cpu, _ = run (prog op) in
        Cpu.get cpu Reg.r1)
      [ Insn.Add; Sub; Mul; Divu; Remu; And; Or; Xor; Shl; Shr ]
  in
  Alcotest.(check (list int64)) "alu results"
    [ 107L; 93L; 700L; 14L; 2L; 4L; 103L; 99L; 12800L; 0L ]
    results

let test_div_by_zero () =
  expect_fault "div0"
    [ Insn.Mov_imm (Reg.r1, 5L); Insn.Alu (Divu, Reg.r1, O_imm 0L) ]
    (function Fault.Div_by_zero _ -> true | _ -> false)

let test_flags_and_branches () =
  (* r1 = (3 < 5) ? 10 : 20 using jlt *)
  let insns =
    [
      Insn.Mov_imm (Reg.r1, 3L);
      Insn.Cmp (Reg.r1, O_imm 5L);
      Insn.Jcc (Lt, Codec.length (Insn.Mov_imm (Reg.r2, 20L)));
      Insn.Mov_imm (Reg.r2, 20L);
      Insn.Mov_imm (Reg.r3, 1L);
      Insn.Syscall_gate;
    ]
  in
  (* the taken branch skips "mov r2, 20" *)
  let _, cpu, _ = run insns in
  Alcotest.(check int64) "skipped" 0L (Cpu.get cpu Reg.r2);
  Alcotest.(check int64) "landed" 1L (Cpu.get cpu Reg.r3)

let test_signed_compare () =
  let insns =
    [
      Insn.Mov_imm (Reg.r1, -1L);
      Insn.Cmp (Reg.r1, O_imm 1L);
      Insn.Jcc (Lt, Codec.length (Insn.Mov_imm (Reg.r2, 9L)));
      Insn.Mov_imm (Reg.r2, 9L);
      Insn.Syscall_gate;
    ]
  in
  let _, cpu, _ = run insns in
  Alcotest.(check int64) "-1 < 1 signed" 0L (Cpu.get cpu Reg.r2)

let test_load_store () =
  let m : Insn.mem = Sib { base = Reg.r5; index = Some Reg.r6; scale = 8; disp = 16 } in
  let insns =
    [
      Insn.Mov_imm (Reg.r5, Int64.of_int data);
      Insn.Mov_imm (Reg.r6, 3L);
      Insn.Mov_imm (Reg.r1, 0xDEADL);
      Insn.Store { dst = m; src = Reg.r1; size = 8 };
      Insn.Load { dst = Reg.r2; src = m; size = 8 };
      Insn.Load { dst = Reg.r3; src = m; size = 1 };
      Insn.Syscall_gate;
    ]
  in
  let _, cpu, mem = run insns in
  Alcotest.(check int64) "load" 0xDEADL (Cpu.get cpu Reg.r2);
  Alcotest.(check int64) "byte load" 0xADL (Cpu.get cpu Reg.r3);
  Alcotest.(check int64) "in memory" 0xDEADL (Mem.read_u64_priv mem (data + 16 + 24))

let test_push_pop_call_ret () =
  let insns =
    [
      Insn.Mov_imm (Reg.r1, 7L);
      Insn.Push Reg.r1;
      Insn.Pop Reg.r2;
      (* call skips one mov; the callee is "ret" *)
      Insn.Call (Codec.length (Insn.Mov_imm (Reg.r3, 1L)));
      Insn.Mov_imm (Reg.r3, 1L);
      Insn.Syscall_gate;
    ]
  in
  (* place callee: after the gate we need a ret at the call target.
     Easier: call jumps +len(mov) over "mov r3" to the gate; but then ret
     never runs. Use explicit layout instead. *)
  ignore insns;
  let mov = Insn.Mov_imm (Reg.r4, 42L) in
  let gate = Insn.Syscall_gate in
  (* layout: call X; gate; X: mov; ret  -- call target = after gate *)
  let call = Insn.Call (Codec.length gate) in
  let prog = [ call; gate; mov; Insn.Ret ] in
  let mem, cpu = setup prog in
  let stop = Interp.run mem cpu ~fuel:100 in
  Alcotest.(check string) "returned to gate" "syscall" (Interp.stop_to_string stop);
  Alcotest.(check int64) "callee ran" 42L (Cpu.get cpu Reg.r4);
  (* push/pop roundtrip *)
  let _, cpu2, _ =
    run [ Insn.Mov_imm (Reg.r1, 7L); Insn.Push Reg.r1; Insn.Pop Reg.r2; gate ]
  in
  Alcotest.(check int64) "pop" 7L (Cpu.get cpu2 Reg.r2)

let test_mpx_bounds () =
  let mem, cpu = setup [ Insn.Bndcl (Reg.bnd0, Ea_reg Reg.r1); Insn.Syscall_gate ] in
  Cpu.set_bnd cpu Reg.bnd0 { lower = 100L; upper = 200L };
  Cpu.set cpu Reg.r1 150L;
  (match Interp.run mem cpu ~fuel:10 with
  | Interp.Stop_syscall -> ()
  | s -> Alcotest.fail (Interp.stop_to_string s));
  (* below lower bound *)
  let mem, cpu = setup [ Insn.Bndcl (Reg.bnd0, Ea_reg Reg.r1); Insn.Syscall_gate ] in
  Cpu.set_bnd cpu Reg.bnd0 { lower = 100L; upper = 200L };
  Cpu.set cpu Reg.r1 99L;
  (match Interp.run mem cpu ~fuel:10 with
  | Interp.Stop_fault (Fault.Bound_fault { bnd = 0; value = 99L }) -> ()
  | s -> Alcotest.fail (Interp.stop_to_string s));
  (* above upper bound via bndcu on a memory operand's address *)
  let m : Insn.mem = Sib { base = Reg.r1; index = None; scale = 1; disp = 8 } in
  let mem, cpu = setup [ Insn.Bndcu (Reg.bnd0, Ea_mem m); Insn.Syscall_gate ] in
  Cpu.set_bnd cpu Reg.bnd0 { lower = 0L; upper = 200L };
  Cpu.set cpu Reg.r1 193L;
  (match Interp.run mem cpu ~fuel:10 with
  | Interp.Stop_fault (Fault.Bound_fault { bnd = 0; value = 201L }) -> ()
  | s -> Alcotest.fail (Interp.stop_to_string s))

let test_guard_page_fault () =
  (* store into the unmapped page right after the data region *)
  expect_fault "guard"
    [
      Insn.Mov_imm (Reg.r1, Int64.of_int (12 * 4096));
      Insn.Store
        { dst = Sib { base = Reg.r1; index = None; scale = 1; disp = 0 };
          src = Reg.r1; size = 8 };
    ]
    (function
      | Fault.Page_fault { access = Fault.Write; _ } -> true
      | _ -> false)

let test_nx () =
  (* jumping into non-executable data faults on fetch *)
  expect_fault "nx"
    [ Insn.Mov_imm (Reg.r1, Int64.of_int data); Insn.Jmp_reg Reg.r1 ]
    (function
      | Fault.Page_fault { access = Fault.Exec; _ } -> true
      | _ -> false)

let test_privileged () =
  List.iter
    (fun (name, insn) ->
      expect_fault name [ insn ]
        (function Fault.Privileged _ -> true | _ -> false))
    [
      ("hlt", Insn.Hlt);
      ("eexit", Insn.Eexit);
      ("emodpe", Insn.Emodpe);
      ("eaccept", Insn.Eaccept);
      ("xrstor", Insn.Xrstor);
      ("wrfsbase", Insn.Wrfsbase Reg.r0);
      ("bndmk", Insn.Bndmk (Reg.bnd0, Rip_rel 0));
      ("bndmov", Insn.Bndmov (Reg.bnd0, Reg.bnd1));
    ]

let test_decode_fault () =
  let mem = Mem.create ~size:8192 in
  Mem.map mem ~addr:4096 ~len:4096 ~perm:Mem.perm_rwx;
  Mem.write_bytes_priv mem ~addr:4096 (Bytes.of_string "\xFF\xFF");
  let cpu = Cpu.create () in
  cpu.Cpu.pc <- 4096;
  match Interp.run mem cpu ~fuel:10 with
  | Interp.Stop_fault (Fault.Decode_fault _) -> ()
  | s -> Alcotest.fail (Interp.stop_to_string s)

let test_quantum () =
  (* an infinite loop runs out of fuel *)
  let jmp_len = Codec.length (Insn.Jmp 0) in
  match run ~fuel:50 [ Insn.Jmp (-jmp_len) ] with
  | Interp.Stop_quantum, cpu, _ ->
      Alcotest.(check int) "insns executed" 50 cpu.Cpu.insns
  | s, _, _ -> Alcotest.fail (Interp.stop_to_string s)

let test_rip_relative () =
  (* rip-relative store to a known absolute address *)
  let store = Insn.Store { dst = Rip_rel 100; src = Reg.r1; size = 8 } in
  let mov = Insn.Mov_imm (Reg.r1, 55L) in
  let insns = [ mov; store; Insn.Syscall_gate ] in
  let target = 4096 + Codec.length mov + Codec.length store + 100 in
  (* target is still in the code page (rwx) so the write succeeds *)
  let mem, cpu = setup insns in
  (match Interp.run mem cpu ~fuel:10 with
  | Interp.Stop_syscall -> ()
  | s -> Alcotest.fail (Interp.stop_to_string s));
  Alcotest.(check int64) "rip store landed" 55L (Mem.read_u64_priv mem target)

let test_cpu_snapshot () =
  let cpu = Cpu.create () in
  Cpu.set cpu Reg.r3 99L;
  Cpu.set_bnd cpu Reg.bnd2 { lower = 5L; upper = 6L };
  cpu.Cpu.pc <- 1234;
  cpu.Cpu.flag_eq <- true;
  let snap = Cpu.save cpu in
  Cpu.set cpu Reg.r3 0L;
  Cpu.set_bnd cpu Reg.bnd2 { lower = 0L; upper = 0L };
  cpu.Cpu.pc <- 0;
  cpu.Cpu.flag_eq <- false;
  Cpu.restore cpu snap;
  Alcotest.(check int64) "reg restored" 99L (Cpu.get cpu Reg.r3);
  Alcotest.(check bool) "bnd restored" true
    (Cpu.get_bnd cpu Reg.bnd2 = { Cpu.lower = 5L; upper = 6L });
  Alcotest.(check int) "pc restored" 1234 cpu.Cpu.pc;
  Alcotest.(check bool) "flags restored" true cpu.Cpu.flag_eq

let test_cfi_label_is_nop () =
  let _, cpu, _ =
    run [ Insn.Cfi_label 7l; Insn.Mov_imm (Reg.r1, 5L); Insn.Syscall_gate ]
  in
  Alcotest.(check int64) "fell through the label" 5L (Cpu.get cpu Reg.r1)

let suite =
  [
    Alcotest.test_case "memory permissions" `Quick test_mem_permissions;
    Alcotest.test_case "alu semantics" `Quick test_alu;
    Alcotest.test_case "division by zero" `Quick test_div_by_zero;
    Alcotest.test_case "flags and branches" `Quick test_flags_and_branches;
    Alcotest.test_case "signed compare" `Quick test_signed_compare;
    Alcotest.test_case "load/store with SIB" `Quick test_load_store;
    Alcotest.test_case "push/pop/call/ret" `Quick test_push_pop_call_ret;
    Alcotest.test_case "mpx bound checks" `Quick test_mpx_bounds;
    Alcotest.test_case "guard page faults" `Quick test_guard_page_fault;
    Alcotest.test_case "nx data" `Quick test_nx;
    Alcotest.test_case "privileged instructions" `Quick test_privileged;
    Alcotest.test_case "decode fault" `Quick test_decode_fault;
    Alcotest.test_case "quantum expiry" `Quick test_quantum;
    Alcotest.test_case "rip-relative addressing" `Quick test_rip_relative;
    Alcotest.test_case "cpu snapshot (ssa)" `Quick test_cpu_snapshot;
    Alcotest.test_case "cfi_label is a nop" `Quick test_cfi_label_is_nop;
  ]
