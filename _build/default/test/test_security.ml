(* Security tests (§7, §9.3): the RIPE corpus outcome matrix must match
   the paper — MMDSFI stops every code-injection and ROP attack, while
   return-to-libc "succeeds" without breaking SIP isolation; the
   unprotected baseline falls to everything. Plus isolation probes:
   a SIP attempting to touch another SIP's memory or the LibOS. *)

open Occlum_workloads.Ripe
module Os = Occlum_libos.Os
open Occlum_toolchain.Ast

let expected_occlum (a : attack) =
  match a.target with
  | Shellcode_labeled | Shellcode_unlabeled | Rop_gadget -> `Prevented
  | Return_to_libc -> `Succeeded

let test_ripe_on_occlum () =
  List.iter
    (fun a ->
      let got = run_on_occlum a in
      match (expected_occlum a, got) with
      | `Prevented, Prevented _ -> ()
      | `Succeeded, Attack_succeeded -> ()
      | _, got ->
          Alcotest.fail
            (Printf.sprintf "%s: occlum gave %s" a.name (outcome_to_string got)))
    corpus

let test_ripe_on_baseline () =
  List.iter
    (fun a ->
      match run_on_baseline a with
      | Attack_succeeded -> ()
      | Prevented r ->
          Alcotest.fail (Printf.sprintf "%s: baseline prevented (%s)?" a.name r))
    corpus

(* The injected-code page is in D: even with a forged label, execution
   must die on the NX data page, not run the shellcode. *)
let test_code_injection_faults_on_nx () =
  let a =
    List.find (fun a -> a.target = Shellcode_labeled && a.technique = Funcptr) corpus
  in
  match run_on_occlum a with
  | Prevented reason ->
      Alcotest.(check bool) "exec page fault" true
        (Occlum_util.Bytes_util.contains ~needle:"exec" (Bytes.of_string reason))
  | Attack_succeeded -> Alcotest.fail "shellcode ran"

(* A store aimed below/above the SIP's own data region must raise #BR on
   the mem_guard: inter-process isolation at the instruction level. The
   victim address is another domain's D region. *)
let test_cross_domain_store_blocked () =
  let prog target_addr =
    Occlum_toolchain.Runtime.program
      [
        func "main" []
          [
            Store (i target_addr, i 0xEEEE);
            Return (i 0);
          ];
      ]
  in
  let os = Os.boot () in
  (* two SIPs: pid1 idles, pid2 tries to write into pid1's domain *)
  let idle =
    Occlum_toolchain.Runtime.program
      [ func "main" [] [ While (i 1, [ Expr (Call ("yield", [])) ]); Return (i 0) ] ]
  in
  let build p =
    match
      Occlum_verifier.Verify.verify_and_sign
        (Occlum_toolchain.Compile.compile_exn ~config:Occlum_toolchain.Codegen.sfi p)
    with
    | Ok s -> s
    | Error _ -> failwith "verify"
  in
  Os.install_binary os "/bin/idle" (build idle);
  let pid1 = Os.spawn os ~parent_pid:0 ~path:"/bin/idle" ~args:[] in
  let victim_d =
    match Os.find_proc os pid1 with
    | Some p -> Occlum_libos.Domain_mgr.d_base p.img.slot
    | None -> failwith "no victim"
  in
  Os.install_binary os "/bin/attacker" (build (prog (victim_d + 64)));
  let pid2 = Os.spawn os ~parent_pid:0 ~path:"/bin/attacker" ~args:[] in
  ignore (Os.wait_pid_exit ~max_steps:200_000 os pid2);
  (* the attacker died on a bound fault; the victim's memory is intact *)
  (match Os.find_proc os pid2 with
  | Some p ->
      Alcotest.(check bool) "attacker killed" true (p.exit_code > 128)
  | None -> Alcotest.fail "attacker vanished");
  (match os.Os.faults with
  | (_, Occlum_machine.Fault.Bound_fault _) :: _ -> ()
  | _ -> Alcotest.fail "expected a #BR bound fault");
  Alcotest.(check int64) "victim memory untouched" 0L
    (Occlum_machine.Mem.read_u64_priv os.Os.mem (victim_d + 64))

(* Loads are confined too: reading another domain is a #BR. *)
let test_cross_domain_load_blocked () =
  let reader target =
    Occlum_toolchain.Runtime.program
      [ func "main" [] [ Return (Load (i target)) ] ]
  in
  let os = Os.boot () in
  let build p =
    match
      Occlum_verifier.Verify.verify_and_sign
        (Occlum_toolchain.Compile.compile_exn ~config:Occlum_toolchain.Codegen.sfi p)
    with
    | Ok s -> s
    | Error _ -> failwith "verify"
  in
  (* target: the first domain slot's D base, while running in slot 2 *)
  Os.install_binary os "/bin/idle"
    (build (Occlum_toolchain.Runtime.program
              [ func "main" [] [ While (i 1, [ Expr (Call ("yield", [])) ]);
                                 Return (i 0) ] ]));
  let pid1 = Os.spawn os ~parent_pid:0 ~path:"/bin/idle" ~args:[] in
  let victim_d =
    match Os.find_proc os pid1 with
    | Some p -> Occlum_libos.Domain_mgr.d_base p.img.slot
    | None -> failwith "no victim"
  in
  Os.install_binary os "/bin/reader" (build (reader victim_d));
  let pid2 = Os.spawn os ~parent_pid:0 ~path:"/bin/reader" ~args:[] in
  ignore (Os.wait_pid_exit ~max_steps:200_000 os pid2);
  match Os.find_proc os pid2 with
  | Some p -> Alcotest.(check bool) "reader killed" true (p.exit_code > 128)
  | None -> Alcotest.fail "reader vanished"

(* The same cross-domain store on the unprotected baseline would go
   through — the point of the comparison. Here both regions belong to the
   single bare process, so we emulate by checking the bare build performs
   raw stores without any bound check. *)
let test_bare_has_no_checks () =
  let prog =
    Occlum_toolchain.Runtime.program
      ~globals:[ ("buf", 64) ]
      [ func "main" [] [ Store (Global_addr "buf", i 1); Return (i 0) ] ]
  in
  let r =
    Occlum_baseline.Native_run.run
      (Occlum_toolchain.Compile.compile_exn ~config:Occlum_toolchain.Codegen.bare prog)
  in
  Alcotest.(check int) "no dynamic checks" 0 r.bound_checks

(* The verifier-level gate: the RIPE attack binaries themselves are
   legitimate programs and must pass verification (the threat model is a
   compromised-but-verified SIP). *)
let test_ripe_binaries_verify () =
  List.iter
    (fun a ->
      let oelf =
        Occlum_toolchain.Compile.compile_exn ~config:Occlum_toolchain.Codegen.sfi
          (attack_program a)
      in
      match Occlum_verifier.Verify.verify oelf with
      | Ok _ -> ()
      | Error rs ->
          Alcotest.fail
            (a.name ^ ": " ^ Occlum_verifier.Verify.rejection_to_string (List.hd rs)))
    corpus

let suite =
  [
    Alcotest.test_case "RIPE matrix on Occlum" `Slow test_ripe_on_occlum;
    Alcotest.test_case "RIPE matrix on baseline" `Slow test_ripe_on_baseline;
    Alcotest.test_case "code injection dies on NX" `Quick
      test_code_injection_faults_on_nx;
    Alcotest.test_case "cross-domain store blocked" `Quick
      test_cross_domain_store_blocked;
    Alcotest.test_case "cross-domain load blocked" `Quick
      test_cross_domain_load_blocked;
    Alcotest.test_case "bare build has no checks" `Quick test_bare_has_no_checks;
    Alcotest.test_case "attack binaries pass the verifier" `Quick
      test_ripe_binaries_verify;
  ]
