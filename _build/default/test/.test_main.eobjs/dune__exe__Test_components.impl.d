test/test_components.ml: Alcotest Buffer Bytes Codec Fd Gen Hashtbl Insn List Net Occlum_abi Occlum_baseline Occlum_isa Occlum_libos Occlum_toolchain QCheck QCheck_alcotest Reg Ring String
