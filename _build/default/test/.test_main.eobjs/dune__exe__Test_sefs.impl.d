test/test_sefs.ml: Alcotest Bytes Char Hashtbl List Occlum_abi Occlum_libos Occlum_util Printf Sefs String
