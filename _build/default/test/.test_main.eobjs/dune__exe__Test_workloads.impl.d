test/test_workloads.ml: Alcotest Buffer List Occlum_baseline Occlum_libos Occlum_toolchain Occlum_workloads Printf String
