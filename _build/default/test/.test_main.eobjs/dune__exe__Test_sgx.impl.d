test/test_sgx.ml: Alcotest Attestation Bytes Cpu Enclave Epc Mem Occlum_isa Occlum_machine Occlum_sgx Occlum_util String
