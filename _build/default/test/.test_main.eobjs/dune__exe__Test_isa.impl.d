test/test_isa.ml: Alcotest Bytes Char Codec Insn Int32 List Occlum_isa QCheck QCheck_alcotest Reg String
