test/test_stress.ml: Alcotest Char List Occlum_abi Occlum_libos Occlum_sgx Occlum_toolchain Occlum_verifier Printf String
