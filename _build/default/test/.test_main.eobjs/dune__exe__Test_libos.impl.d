test/test_libos.ml: Alcotest List Occlum Occlum_abi Occlum_libos Occlum_sgx Occlum_toolchain Occlum_verifier Printf String
