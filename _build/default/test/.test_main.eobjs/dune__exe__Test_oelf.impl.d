test/test_oelf.ml: Alcotest Bytes List Occlum_oelf Occlum_verifier Oelf String
