test/test_util.ml: Alcotest Bytes Bytes_util Char Cipher Fun Gen Hmac List Occlum_util Prng QCheck QCheck_alcotest Sha256 String
