test/test_machine.ml: Alcotest Bytes Codec Cpu Fault Insn Int64 Interp List Mem Occlum_isa Occlum_machine Printf Reg
