(* ISA tests: codec roundtrips (hand-picked and property-based), total
   decoding over arbitrary bytes, the cfi_label magic-byte invariant the
   whole verification story rests on, and the Fig. 3/4 classifiers. *)

open Occlum_isa

(* --- generators ---------------------------------------------------------- *)

let gen_reg = QCheck.Gen.map Reg.of_int (QCheck.Gen.int_range 0 15)
let gen_bnd = QCheck.Gen.map Reg.bnd_of_int (QCheck.Gen.int_range 0 3)
let gen_scale = QCheck.Gen.oneofl [ 1; 2; 4; 8 ]
let gen_size = QCheck.Gen.oneofl [ 1; 8 ]
let gen_disp = QCheck.Gen.int_range (-0x8000_0000) 0x7FFF_FFFF
let gen_imm = QCheck.Gen.int64

let gen_mem =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun (base, index) (scale, disp) -> Insn.Sib { base; index; scale; disp })
          (pair gen_reg (opt gen_reg))
          (pair gen_scale gen_disp);
        map (fun d -> Insn.Rip_rel d) gen_disp;
        map (fun a -> Insn.Abs a) gen_imm;
      ])

let gen_operand =
  QCheck.Gen.(
    oneof [ map (fun r -> Insn.O_reg r) gen_reg; map (fun v -> Insn.O_imm v) gen_imm ])

let gen_alu =
  QCheck.Gen.oneofl
    [ Insn.Add; Sub; Mul; Divu; Remu; And; Or; Xor; Shl; Shr ]

let gen_cond = QCheck.Gen.oneofl [ Insn.Eq; Ne; Lt; Le; Gt; Ge ]

let gen_ea =
  QCheck.Gen.(
    oneof [ map (fun r -> Insn.Ea_reg r) gen_reg; map (fun m -> Insn.Ea_mem m) gen_mem ])

let gen_insn : Insn.t QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        return Insn.Nop;
        map2 (fun r v -> Insn.Mov_imm (r, v)) gen_reg gen_imm;
        map2 (fun d s -> Insn.Mov_reg (d, s)) gen_reg gen_reg;
        map3 (fun dst src size -> Insn.Load { dst; src; size }) gen_reg gen_mem gen_size;
        map3 (fun dst src size -> Insn.Store { dst; src; size }) gen_mem gen_reg gen_size;
        map (fun r -> Insn.Push r) gen_reg;
        map (fun r -> Insn.Pop r) gen_reg;
        map2 (fun r m -> Insn.Lea (r, m)) gen_reg gen_mem;
        map3 (fun op r o -> Insn.Alu (op, r, o)) gen_alu gen_reg gen_operand;
        map2 (fun r o -> Insn.Cmp (r, o)) gen_reg gen_operand;
        map (fun d -> Insn.Jmp d) gen_disp;
        map2 (fun c d -> Insn.Jcc (c, d)) gen_cond gen_disp;
        map (fun d -> Insn.Call d) gen_disp;
        map (fun r -> Insn.Jmp_reg r) gen_reg;
        map (fun r -> Insn.Call_reg r) gen_reg;
        map (fun m -> Insn.Jmp_mem m) gen_mem;
        map (fun m -> Insn.Call_mem m) gen_mem;
        return Insn.Ret;
        map (fun n -> Insn.Ret_imm n) (int_range 0 1024);
        return Insn.Syscall_gate;
        return Insn.Hlt;
        map2 (fun b ea -> Insn.Bndcl (b, ea)) gen_bnd gen_ea;
        map2 (fun b ea -> Insn.Bndcu (b, ea)) gen_bnd gen_ea;
        map2 (fun b m -> Insn.Bndmk (b, m)) gen_bnd gen_mem;
        map2 (fun a b -> Insn.Bndmov (a, b)) gen_bnd gen_bnd;
        map (fun id -> Insn.Cfi_label (Int32.of_int id)) (int_range 0 0xFFFF);
        return Insn.Eexit;
        return Insn.Emodpe;
        return Insn.Eaccept;
        return Insn.Xrstor;
        map (fun r -> Insn.Wrfsbase r) gen_reg;
        map (fun r -> Insn.Wrgsbase r) gen_reg;
        map3
          (fun base index (scale, src) -> Insn.Vscatter { base; index; scale; src })
          gen_reg gen_reg (pair gen_scale gen_reg);
      ])

let arb_insn = QCheck.make ~print:Insn.to_string gen_insn

(* --- properties ---------------------------------------------------------- *)

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:2000 arb_insn (fun insn ->
      let s = Codec.encode insn in
      match Codec.decode (Bytes.of_string s) ~pos:0 ~limit:(String.length s) with
      | Ok (decoded, len) -> decoded = insn && len = String.length s
      | Error _ -> false)

let prop_magic_invariant =
  QCheck.Test.make ~name:"0xF4 appears only in cfi_label encodings" ~count:2000
    arb_insn (fun insn ->
      let s = Codec.encode insn in
      match insn with
      | Insn.Cfi_label _ -> s.[0] = '\xF4'
      | _ -> not (String.contains s '\xF4'))

let prop_decode_total =
  QCheck.Test.make ~name:"decode never raises on arbitrary bytes" ~count:2000
    QCheck.(string_of_size (QCheck.Gen.int_range 1 40))
    (fun s ->
      match Codec.decode (Bytes.of_string s) ~pos:0 ~limit:(String.length s) with
      | Ok _ | Error _ -> true)

let prop_decode_prefix_safety =
  QCheck.Test.make ~name:"truncated encodings fail to decode" ~count:500 arb_insn
    (fun insn ->
      let s = Codec.encode insn in
      String.length s <= 1
      ||
      let cut = String.sub s 0 (String.length s - 1) in
      match Codec.decode (Bytes.of_string cut) ~pos:0 ~limit:(String.length cut) with
      | Error _ -> true
      | Ok (_, len) -> len <= String.length cut (* decoded a shorter insn *))

(* --- unit tests ------------------------------------------------------------ *)

let test_cfi_label_encoding () =
  let s = Codec.encode (Insn.Cfi_label 0x1234l) in
  Alcotest.(check int) "8 bytes" 8 (String.length s);
  Alcotest.(check string) "magic prefix" Codec.cfi_magic (String.sub s 0 4);
  Alcotest.(check int) "id lo" 0x34 (Char.code s.[4]);
  Alcotest.(check int) "id hi" 0x12 (Char.code s.[5]);
  Alcotest.check_raises "id range"
    (Invalid_argument "Codec: cfi_label domain id must be in [0, 65536)")
    (fun () -> ignore (Codec.encode (Insn.Cfi_label 0x10000l)))

let test_escape_bytes () =
  (* immediates full of 0xF4 bytes must roundtrip without raw 0xF4 *)
  let insn = Insn.Mov_imm (Reg.r3, 0xF4F4F4F4F4F4F4F4L) in
  let s = Codec.encode insn in
  Alcotest.(check bool) "no F4" false (String.contains s '\xF4');
  (match Codec.decode (Bytes.of_string s) ~pos:0 ~limit:(String.length s) with
  | Ok (d, _) -> Alcotest.(check bool) "roundtrip" true (d = insn)
  | Error _ -> Alcotest.fail "decode failed");
  (* negative displacement that ends with byte 0xF4 *)
  let j = Insn.Jmp (-12) in
  let sj = Codec.encode j in
  Alcotest.(check bool) "jmp -12 no F4" false (String.contains sj '\xF4')

let test_variable_length () =
  let lengths =
    List.sort_uniq compare
      (List.map Codec.length
         [ Insn.Nop; Insn.Push Reg.r0; Insn.Mov_reg (Reg.r0, Reg.r1);
           Insn.Jmp 0; Insn.Mov_imm (Reg.r0, 0L); Insn.Cfi_label 0l ])
  in
  Alcotest.(check bool) "several distinct lengths" true (List.length lengths >= 5)

let test_classification () =
  let ct i = Insn.control_transfer_of i in
  (match ct (Insn.Jmp 4) with
  | Insn.Ct_direct { cond = false; rel = 4 } -> ()
  | _ -> Alcotest.fail "jmp direct");
  (match ct (Insn.Jcc (Eq, -2)) with
  | Insn.Ct_direct { cond = true; rel = -2 } -> ()
  | _ -> Alcotest.fail "jcc direct");
  (match ct (Insn.Jmp_reg Reg.r5) with
  | Insn.Ct_register r when r = Reg.r5 -> ()
  | _ -> Alcotest.fail "jmp_reg");
  (match ct (Insn.Jmp_mem (Rip_rel 0)) with
  | Insn.Ct_memory -> ()
  | _ -> Alcotest.fail "jmp_mem");
  (match ct Insn.Ret with Insn.Ct_return -> () | _ -> Alcotest.fail "ret");
  (match ct (Insn.Ret_imm 8) with Insn.Ct_return -> () | _ -> Alcotest.fail "ret n");
  (match ct Insn.Nop with Insn.Ct_none -> () | _ -> Alcotest.fail "nop");
  (* Figure 4 categories *)
  let ma i = Insn.mem_access_of i in
  (match ma (Insn.Load { dst = Reg.r0;
                         src = Sib { base = Reg.r1; index = None; scale = 1; disp = 0 };
                         size = 8 })
   with
  | Insn.Ma_sib { is_store = false; _ } -> ()
  | _ -> Alcotest.fail "sib load");
  (match ma (Insn.Push Reg.r0) with
  | Insn.Ma_implicit { push = true } -> ()
  | _ -> Alcotest.fail "push implicit");
  (match ma (Insn.Store { dst = Rip_rel 16; src = Reg.r0; size = 8 }) with
  | Insn.Ma_rip_rel { is_store = true; _ } -> ()
  | _ -> Alcotest.fail "rip");
  (match ma (Insn.Load { dst = Reg.r0; src = Abs 4096L; size = 8 }) with
  | Insn.Ma_direct_offset -> ()
  | _ -> Alcotest.fail "abs");
  (match ma (Insn.Vscatter { base = Reg.r0; index = Reg.r1; scale = 4; src = Reg.r2 })
   with
  | Insn.Ma_vector_sib -> ()
  | _ -> Alcotest.fail "vscatter")

let test_danger_classes () =
  let d i = Insn.danger_of i in
  Alcotest.(check bool) "eexit" true (d Insn.Eexit = Some Insn.Sgx_instruction);
  Alcotest.(check bool) "bndmk" true
    (d (Insn.Bndmk (Reg.bnd0, Rip_rel 0)) = Some Insn.Mpx_modification);
  Alcotest.(check bool) "bndmov" true
    (d (Insn.Bndmov (Reg.bnd0, Reg.bnd1)) = Some Insn.Mpx_modification);
  Alcotest.(check bool) "wrfsbase" true
    (d (Insn.Wrfsbase Reg.r0) = Some Insn.Misc_privileged);
  Alcotest.(check bool) "gate" true (d Insn.Syscall_gate = Some Insn.Libos_gate);
  Alcotest.(check bool) "bndcl is fine" true
    (d (Insn.Bndcl (Reg.bnd0, Ea_reg Reg.r0)) = None);
  Alcotest.(check bool) "cfi_label is fine" true (d (Insn.Cfi_label 3l) = None)

let test_decode_errors () =
  let dec s = Codec.decode (Bytes.of_string s) ~pos:0 ~limit:(String.length s) in
  (match dec "\xFF" with
  | Error (Codec.Bad_opcode 0xFF) -> ()
  | _ -> Alcotest.fail "bad opcode");
  (match dec "\x11" (* mov_imm truncated *) with
  | Error Codec.Truncated -> ()
  | _ -> Alcotest.fail "truncated");
  (* cfi magic with wrong tail *)
  (match dec "\xF4\x1A\xBE\x12\x00\x00\x00\x00" with
  | Error (Codec.Bad_opcode 0xF4) -> ()
  | _ -> Alcotest.fail "bad magic tail");
  (* cfi id with nonzero high bytes *)
  (match dec "\xF4\x1A\xBE\x11\x01\x02\x03\x00" with
  | Error (Codec.Bad_operand _) -> ()
  | _ -> Alcotest.fail "bad id");
  (* bad register *)
  (match dec "\x12\x20\x00" with
  | Error (Codec.Bad_operand _) -> ()
  | _ -> Alcotest.fail "bad reg")

let test_reg_names () =
  Alcotest.(check string) "sp" "sp" (Reg.name Reg.sp);
  Alcotest.(check string) "scratch" "scr" (Reg.name Reg.scratch);
  Alcotest.(check string) "r3" "r3" (Reg.name Reg.r3);
  Alcotest.check_raises "range" (Invalid_argument "Reg.of_int") (fun () ->
      ignore (Reg.of_int 16))

let suite =
  [
    Alcotest.test_case "cfi_label encoding" `Quick test_cfi_label_encoding;
    Alcotest.test_case "escape bytes" `Quick test_escape_bytes;
    Alcotest.test_case "variable length" `Quick test_variable_length;
    Alcotest.test_case "fig3/fig4 classification" `Quick test_classification;
    Alcotest.test_case "stage-2 danger classes" `Quick test_danger_classes;
    Alcotest.test_case "decode errors" `Quick test_decode_errors;
    Alcotest.test_case "register names" `Quick test_reg_names;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_magic_invariant;
    QCheck_alcotest.to_alcotest prop_decode_total;
    QCheck_alcotest.to_alcotest prop_decode_prefix_safety;
  ]
