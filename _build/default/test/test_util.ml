(* Unit and property tests for occlum_util: crypto primitives against
   published vectors, PRNG determinism, byte helpers. *)

open Occlum_util

let check = Alcotest.check Alcotest.string

let test_sha256_vectors () =
  check "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.to_hex (Sha256.digest ""));
  check "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.to_hex (Sha256.digest "abc"));
  check "448-bit"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.to_hex
       (Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"));
  (* a million 'a's, streamed in odd chunks *)
  let ctx = Sha256.init () in
  let chunk = String.make 997 'a' in
  let fed = ref 0 in
  while !fed + 997 <= 1_000_000 do
    Sha256.feed ctx chunk;
    fed := !fed + 997
  done;
  Sha256.feed ctx (String.make (1_000_000 - !fed) 'a');
  check "million-a" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.to_hex (Sha256.finalize ctx))

let test_sha256_streaming_equals_oneshot () =
  let data = String.init 10_000 (fun k -> Char.chr (k mod 251)) in
  let ctx = Sha256.init () in
  String.iteri (fun _ _ -> ()) data;
  let rec feed_pieces off =
    if off < String.length data then begin
      let n = min ((off mod 67) + 1) (String.length data - off) in
      Sha256.feed ctx (String.sub data off n);
      feed_pieces (off + n)
    end
  in
  feed_pieces 0;
  check "streamed" (Sha256.to_hex (Sha256.digest data))
    (Sha256.to_hex (Sha256.finalize ctx))

let test_hmac () =
  check "rfc-ish"
    "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
    (Sha256.to_hex
       (Hmac.mac ~key:"key" "The quick brown fox jumps over the lazy dog"));
  let tag = Hmac.mac ~key:"k1" "hello" in
  Alcotest.(check bool) "verify ok" true (Hmac.verify ~key:"k1" ~tag "hello");
  Alcotest.(check bool) "bad key" false (Hmac.verify ~key:"k2" ~tag "hello");
  Alcotest.(check bool) "bad msg" false (Hmac.verify ~key:"k1" ~tag "hellO");
  Alcotest.(check bool) "bad tag" false
    (Hmac.verify ~key:"k1" ~tag:(String.make 32 'x') "hello");
  (* long keys are hashed down *)
  let tag2 = Hmac.mac ~key:(String.make 200 'K') "m" in
  Alcotest.(check bool) "long key" true
    (Hmac.verify ~key:(String.make 200 'K') ~tag:tag2 "m")

let test_chacha_vector () =
  (* RFC 8439 §2.4.2, adjusted for our counter starting at 0 *)
  let key = String.init 32 Char.chr in
  let nonce = "\x00\x00\x00\x00\x00\x00\x00\x4a\x00\x00\x00\x00" in
  let plain =
    "Ladies and Gentlemen of the class of '99: If I could offer you only one \
     tip for the future, sunscreen would be it."
  in
  let padded = Bytes.of_string (String.make 64 '\x00' ^ plain) in
  Cipher.encrypt_bytes ~key ~nonce padded;
  let c = Bytes.sub_string padded 64 (String.length plain) in
  check "rfc8439 head" "6e2e359a2568f980"
    (Bytes_util.hex_of_string (String.sub c 0 8))

let test_cipher_roundtrip () =
  let key = Sha256.digest "k" and nonce = Cipher.derive_nonce "t" 7 in
  let data = String.init 3000 (fun k -> Char.chr ((k * 31) mod 256)) in
  let enc = Cipher.encrypt ~key ~nonce data in
  Alcotest.(check bool) "changed" true (enc <> data);
  check "roundtrip" data (Cipher.encrypt ~key ~nonce enc)

let test_cipher_sizes () =
  Alcotest.check_raises "bad key" (Invalid_argument "Cipher: key must be 32 bytes")
    (fun () -> ignore (Cipher.encrypt ~key:"short" ~nonce:(String.make 12 'n') "x"));
  Alcotest.check_raises "bad nonce"
    (Invalid_argument "Cipher: nonce must be 12 bytes") (fun () ->
      ignore (Cipher.encrypt ~key:(String.make 32 'k') ~nonce:"n" "x"))

let test_prng () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "deterministic" (Prng.next_int64 a) (Prng.next_int64 b)
  done;
  let c = Prng.create 43 in
  Alcotest.(check bool) "seed matters" true
    (Prng.next_int64 (Prng.create 42) <> Prng.next_int64 c);
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int a 0))

let test_bytes_util () =
  Alcotest.(check (list int)) "find_all overlapping" [ 0; 1; 2 ]
    (Bytes_util.find_all ~needle:"aa" (Bytes.of_string "aaaa"));
  Alcotest.(check (list int)) "find_all none" []
    (Bytes_util.find_all ~needle:"xyz" (Bytes.of_string "aaaa"));
  Alcotest.(check int) "round_up" 8192 (Bytes_util.round_up 4097 4096);
  Alcotest.(check int) "round_up exact" 4096 (Bytes_util.round_up 4096 4096);
  Alcotest.(check bool) "contains" true
    (Bytes_util.contains ~needle:"bc" (Bytes.of_string "abcd"));
  Alcotest.(check string) "take_prefix" "ab" (Bytes_util.take_prefix 2 "abcd");
  Alcotest.(check string) "take_prefix short" "ab" (Bytes_util.take_prefix 9 "ab")

let prop_find_all_correct =
  QCheck.Test.make ~name:"find_all finds exactly the occurrences" ~count:200
    QCheck.(pair (string_of_size (Gen.int_range 1 3)) (string_of_size (Gen.int_range 0 60)))
    (fun (needle, hay) ->
      QCheck.assume (String.length needle > 0);
      let hits = Bytes_util.find_all ~needle (Bytes.of_string hay) in
      let nl = String.length needle in
      List.for_all (fun off -> String.sub hay off nl = needle) hits
      && List.length hits
         = List.length
             (List.filter
                (fun off ->
                  off + nl <= String.length hay && String.sub hay off nl = needle)
                (List.init (max 0 (String.length hay)) Fun.id)))

let prop_cipher_involution =
  QCheck.Test.make ~name:"cipher is an involution" ~count:100
    QCheck.(string_of_size (Gen.int_range 0 300))
    (fun data ->
      let key = Occlum_util.Sha256.digest "prop" in
      let nonce = Cipher.derive_nonce "prop" 1 in
      Cipher.encrypt ~key ~nonce (Cipher.encrypt ~key ~nonce data) = data)

let suite =
  [
    Alcotest.test_case "sha256 vectors" `Quick test_sha256_vectors;
    Alcotest.test_case "sha256 streaming" `Quick test_sha256_streaming_equals_oneshot;
    Alcotest.test_case "hmac" `Quick test_hmac;
    Alcotest.test_case "chacha vector" `Quick test_chacha_vector;
    Alcotest.test_case "cipher roundtrip" `Quick test_cipher_roundtrip;
    Alcotest.test_case "cipher arg checks" `Quick test_cipher_sizes;
    Alcotest.test_case "prng" `Quick test_prng;
    Alcotest.test_case "bytes_util" `Quick test_bytes_util;
    QCheck_alcotest.to_alcotest prop_find_all_correct;
    QCheck_alcotest.to_alcotest prop_cipher_involution;
  ]
