(* Workload integration tests: the three §9.1 applications run correctly
   on all three execution models and produce consistent observable
   output; the harness measurements are sane (Occlum beats Graphene on
   multi-process work, SEFS is writable where Graphene's secure FS was
   not, etc.). *)

module H = Occlum_workloads.Harness
module Os = Occlum_libos.Os

let systems = [ H.Linux; H.Occlum; H.Graphene ]

let test_fish_all_systems () =
  (* 2 rounds x 26 lines: exactly one line starts with 'a' -> "33\n" twice *)
  let outputs =
    List.map
      (fun sys ->
        let r = H.run_fish ~repeats:2 ~lines:26 sys in
        (match r.status with
        | Os.All_exited -> ()
        | _ -> Alcotest.fail (H.system_name sys ^ ": did not finish"));
        Alcotest.(check int) (H.system_name sys ^ " faults") 0 r.faults;
        r.console)
      systems
  in
  List.iter2
    (fun sys out ->
      Alcotest.(check string) (H.system_name sys ^ " output") "33\n33\n" out)
    systems outputs

let test_gcc_all_systems () =
  let outputs =
    List.map
      (fun sys ->
        let r = H.run_gcc ~lines:5 sys in
        (match r.status with
        | Os.All_exited -> ()
        | _ -> Alcotest.fail (H.system_name sys ^ ": did not finish"));
        r.console)
      systems
  in
  (* all three systems compile the same file to the same "linked size" *)
  match outputs with
  | [ a; b; c ] ->
      Alcotest.(check string) "occlum == linux" a b;
      Alcotest.(check string) "graphene == linux" a c;
      Alcotest.(check bool) "non-empty" true (String.length a > 1)
  | _ -> assert false

let test_httpd_all_systems () =
  List.iter
    (fun sys ->
      let r = H.run_httpd ~workers:2 ~concurrency:4 ~requests:12 sys in
      Alcotest.(check int) (H.system_name sys ^ " served") 12 r.served)
    systems

let test_httpd_multithreaded () =
  (* the artifact's multithreaded server: 3 threads sharing the listener
     via poll+accept inside one SIP *)
  let os = H.boot H.Occlum in
  H.install os H.Occlum Occlum_workloads.Httpd.binaries;
  ignore
    (Os.spawn_initial os
       (H.build_for H.Occlum Occlum_workloads.Httpd.mt_prog)
       ~args:[ "3"; "4" ]);
  let guard = ref 0 in
  while
    (not (Occlum_libos.Net.has_listener os.Os.net ~port:Occlum_workloads.Httpd.port))
    && !guard < 200_000
  do
    incr guard;
    ignore (Os.step os)
  done;
  let served = ref 0 in
  for _ = 1 to 12 do
    match Occlum_libos.Net.external_connect os.Os.net ~port:Occlum_workloads.Httpd.port with
    | Error _ -> ()
    | Ok ep ->
        ignore (Occlum_libos.Net.external_send os.Os.net ep Occlum_workloads.Httpd.request);
        let buf = Buffer.create 256 and tries = ref 0 in
        while Buffer.length buf < 10240 && !tries < 400_000 do
          incr tries;
          ignore (Os.step os);
          Buffer.add_string buf (Occlum_libos.Net.external_recv_all os.Os.net ep)
        done;
        if Buffer.length buf >= 10240 then incr served
  done;
  Alcotest.(check int) "12 requests over 3 threads" 12 !served;
  (* the whole server then exits cleanly *)
  match Os.run ~max_steps:2_000_000 os with
  | Os.All_exited -> ()
  | _ -> Alcotest.fail "mt server did not exit"

let test_gcc_output_persisted () =
  (* the pipeline's artifact lands on the (writable, encrypted) FS *)
  let os = H.boot H.Occlum in
  H.install os H.Occlum Occlum_workloads.Gcc_pipeline.binaries;
  Occlum_libos.Sefs.ensure_parents os.Os.sefs "/src/x";
  Occlum_libos.Sefs.ensure_parents os.Os.sefs "/tmp/x";
  (match
     Occlum_libos.Sefs.write_path os.Os.sefs "/src/a.c"
       (Occlum_workloads.Gcc_pipeline.source_file ~lines:5)
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "seed source");
  ignore (H.timed_run os "/bin/cc" ~args:[ "/src/a.c" ]);
  match Occlum_libos.Sefs.read_path os.Os.sefs "/tmp/a.out" with
  | Ok s ->
      Alcotest.(check string) "linked header" "OEXE" (String.sub s 0 4);
      Alcotest.(check bool) "has payload" true (String.length s > 4)
  | Error e -> Alcotest.fail (Printf.sprintf "a.out missing: errno %d" e)

let test_spawn_cost_ordering () =
  (* SIP creation must be orders of magnitude cheaper than EIP creation *)
  let spawn sys =
    let os = H.boot sys in
    Os.install_binary os "/bin/small" (H.build_for sys (H.sized_program ~code_kb:14));
    H.spawn_latency ~tries:3 os "/bin/small"
  in
  let sip = spawn H.Occlum and eip = spawn H.Graphene in
  Alcotest.(check bool)
    (Printf.sprintf "eip (%.1fms) >= 10x sip (%.3fms)" (eip *. 1e3) (sip *. 1e3))
    true
    (eip > 10. *. sip)

let test_pipe_throughput_ordering () =
  let _, sip, _ = H.run_pipe ~total:(1 lsl 17) ~bufsz:4096 H.Occlum in
  let _, eip, _ = H.run_pipe ~total:(1 lsl 17) ~bufsz:4096 H.Graphene in
  Alcotest.(check bool)
    (Printf.sprintf "sip %.0f MB/s > 2x eip %.0f MB/s" sip eip)
    true (sip > 2. *. eip)

let test_sefs_vs_ext4_overhead () =
  let occlum, _ = H.run_file_io ~total:(1 lsl 18) ~bufsz:4096 ~write:false H.Occlum in
  let linux, _ = H.run_file_io ~total:(1 lsl 18) ~bufsz:4096 ~write:false H.Linux in
  let overhead = 1. -. (occlum /. linux) in
  Alcotest.(check bool)
    (Printf.sprintf "read overhead %.0f%% in (10%%, 70%%)" (overhead *. 100.))
    true
    (overhead > 0.10 && overhead < 0.70)

let test_spec_overhead_positive () =
  List.iter
    (fun (name, prog) ->
      let base =
        (Occlum_baseline.Native_run.run
           (Occlum_toolchain.Compile.compile_exn ~config:Occlum_toolchain.Codegen.bare prog))
          .cycles
      in
      let inst =
        (Occlum_baseline.Native_run.run
           (Occlum_toolchain.Compile.compile_exn ~config:Occlum_toolchain.Codegen.sfi prog))
          .cycles
      in
      Alcotest.(check bool) (name ^ " overhead >= 0") true (inst >= base);
      let naive =
        (Occlum_baseline.Native_run.run
           (Occlum_toolchain.Compile.compile_exn
              ~config:Occlum_toolchain.Codegen.sfi_naive prog))
          .cycles
      in
      Alcotest.(check bool) (name ^ " optimizer helps") true (inst <= naive))
    (Occlum_workloads.Spec.all ~scale:1)

let suite =
  [
    Alcotest.test_case "fish on all systems" `Slow test_fish_all_systems;
    Alcotest.test_case "gcc on all systems" `Slow test_gcc_all_systems;
    Alcotest.test_case "httpd on all systems" `Slow test_httpd_all_systems;
    Alcotest.test_case "httpd multithreaded (threads+poll)" `Slow
      test_httpd_multithreaded;
    Alcotest.test_case "gcc artifact persisted on SEFS" `Quick
      test_gcc_output_persisted;
    Alcotest.test_case "spawn cost: EIP >> SIP" `Slow test_spawn_cost_ordering;
    Alcotest.test_case "pipe throughput: SIP >> EIP" `Quick
      test_pipe_throughput_ordering;
    Alcotest.test_case "SEFS read overhead in band" `Quick test_sefs_vs_ext4_overhead;
    Alcotest.test_case "SPEC kernels: overhead sign and optimizer" `Slow
      test_spec_overhead_positive;
  ]
