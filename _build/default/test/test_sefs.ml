(* SEFS tests: the writable encrypted file system — namespace operations,
   multi-block data paths, persistence across remounts (a fresh LibOS
   over the same untrusted host store), host-tamper detection, the shared
   page cache, and the plaintext (ext4-model) mode. *)

open Occlum_libos

let fresh () = Sefs.create ~key:"test-key" ()

let wr t path content =
  match Sefs.write_path t path content with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Printf.sprintf "write %s: errno %d" path e)

let rd t path =
  match Sefs.read_path t path with
  | Ok s -> s
  | Error e -> Alcotest.fail (Printf.sprintf "read %s: errno %d" path e)

let test_basic_files () =
  let t = fresh () in
  wr t "/a.txt" "hello";
  Alcotest.(check string) "read back" "hello" (rd t "/a.txt");
  wr t "/a.txt" "rewritten";
  Alcotest.(check string) "rewrite" "rewritten" (rd t "/a.txt");
  Alcotest.(check bool) "missing" true (Sefs.read_path t "/nope" = Error (-2))

let test_directories () =
  let t = fresh () in
  (match Sefs.mkdir t "/dir" with Ok _ -> () | Error _ -> Alcotest.fail "mkdir");
  (match Sefs.mkdir t "/dir" with
  | Error e when e = Occlum_abi.Abi.Errno.eexist -> ()
  | _ -> Alcotest.fail "mkdir twice");
  wr t "/dir/f1" "one";
  wr t "/dir/f2" "two";
  (match Sefs.readdir t "/dir" with
  | Ok names -> Alcotest.(check (list string)) "listing" [ "f1"; "f2" ] names
  | Error _ -> Alcotest.fail "readdir");
  (match Sefs.readdir t "/dir/f1" with
  | Error e when e = Occlum_abi.Abi.Errno.enotdir -> ()
  | _ -> Alcotest.fail "readdir on file");
  (* non-empty directory cannot be unlinked *)
  (match Sefs.unlink t "/dir" with
  | Error e when e = Occlum_abi.Abi.Errno.enotempty -> ()
  | _ -> Alcotest.fail "unlink non-empty");
  (match Sefs.unlink t "/dir/f1" with Ok () -> () | _ -> Alcotest.fail "unlink");
  Alcotest.(check bool) "gone" true (Sefs.read_path t "/dir/f1" = Error (-2));
  Sefs.ensure_parents t "/x/y/z/file";
  wr t "/x/y/z/file" "deep";
  Alcotest.(check string) "deep path" "deep" (rd t "/x/y/z/file")

let test_rename () =
  let t = fresh () in
  wr t "/old" "payload";
  (match Sefs.rename t "/old" "/new" with Ok () -> () | _ -> Alcotest.fail "rename");
  Alcotest.(check string) "at new name" "payload" (rd t "/new");
  Alcotest.(check bool) "old gone" true (Sefs.read_path t "/old" = Error (-2))

let test_multiblock () =
  let t = fresh () in
  let big = String.init 20000 (fun k -> Char.chr (k mod 251)) in
  wr t "/big" big;
  Alcotest.(check int) "size" 20000 (String.length (rd t "/big"));
  Alcotest.(check string) "content" big (rd t "/big");
  (* partial reads/writes at odd offsets crossing block boundaries *)
  (match Sefs.lookup t "/big" with
  | Some node ->
      (match Sefs.read_file t node ~pos:4090 ~len:20 with
      | Ok b ->
          Alcotest.(check string) "straddling read" (String.sub big 4090 20)
            (Bytes.to_string b)
      | Error _ -> Alcotest.fail "read");
      (match Sefs.write_file t node ~pos:8190 (Bytes.of_string "XYZ") with
      | Ok 3 -> ()
      | _ -> Alcotest.fail "write");
      Alcotest.(check string) "straddling write" "XYZ"
        (String.sub (rd t "/big") 8190 3)
  | None -> Alcotest.fail "lookup")

let test_sparse () =
  let t = fresh () in
  (match Sefs.create_file t "/sparse" with
  | Ok node -> (
      (* write far past the start: the hole reads as zeros *)
      match Sefs.write_file t node ~pos:10000 (Bytes.of_string "end") with
      | Ok _ ->
          let all = rd t "/sparse" in
          Alcotest.(check int) "size" 10003 (String.length all);
          Alcotest.(check string) "hole is zero" (String.make 100 '\x00')
            (String.sub all 0 100);
          Alcotest.(check string) "tail" "end" (String.sub all 10000 3)
      | Error _ -> Alcotest.fail "sparse write")
  | Error _ -> Alcotest.fail "create")

let test_persistence () =
  let t = fresh () in
  Sefs.ensure_parents t "/data/x";
  wr t "/data/file" "survives remount";
  wr t "/top" (String.make 9000 'z');
  Sefs.flush t;
  (* a new LibOS boot mounts the same untrusted host store *)
  let t2 = Sefs.mount ~key:"test-key" t.Sefs.host in
  Alcotest.(check string) "file survives" "survives remount" (rd t2 "/data/file");
  Alcotest.(check string) "big survives" (String.make 9000 'z') (rd t2 "/top");
  (match Sefs.readdir t2 "/" with
  | Ok names -> Alcotest.(check bool) "root listing" true (List.mem "data" names)
  | Error _ -> Alcotest.fail "readdir after mount")

let test_confidentiality () =
  (* the host must never see plaintext *)
  let t = fresh () in
  let secret = "TOP-SECRET-PAYLOAD-0123456789" in
  wr t "/secret" (secret ^ String.make 4096 'p');
  Sefs.flush t;
  Hashtbl.iter
    (fun _ (e : Sefs.Host_store.entry) ->
      Alcotest.(check bool) "ciphertext only" false
        (Occlum_util.Bytes_util.contains ~needle:secret
           (Bytes.of_string e.Sefs.Host_store.cipher)))
    t.Sefs.host.Sefs.Host_store.blocks;
  (match t.Sefs.host.Sefs.Host_store.meta with
  | Some (_, e) ->
      Alcotest.(check bool) "metadata encrypted" false
        (Occlum_util.Bytes_util.contains ~needle:"secret"
           (Bytes.of_string e.Sefs.Host_store.cipher))
  | None -> Alcotest.fail "no metadata")

let test_integrity () =
  let t = fresh () in
  wr t "/f" (String.make 5000 'q');
  Sefs.flush t;
  (* tamper with a host block, then force a cold read *)
  Alcotest.(check bool) "tampered" true (Sefs.Host_store.tamper t.Sefs.host 0);
  Hashtbl.reset t.Sefs.cache;
  (match Sefs.read_path t "/f" with
  | exception Sefs.Corrupt _ -> ()
  | _ -> Alcotest.fail "tampering must be detected");
  (* metadata tampering is detected at mount *)
  let t2 = fresh () in
  wr t2 "/g" "x";
  Sefs.flush t2;
  (match t2.Sefs.host.Sefs.Host_store.meta with
  | Some (g, e) ->
      let b = Bytes.of_string e.Sefs.Host_store.cipher in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
      t2.Sefs.host.Sefs.Host_store.meta <-
        Some (g, { e with Sefs.Host_store.cipher = Bytes.to_string b })
  | None -> Alcotest.fail "no meta");
  match Sefs.mount ~key:"test-key" t2.Sefs.host with
  | exception Sefs.Corrupt _ -> ()
  | _ -> Alcotest.fail "metadata tampering must be detected"

let test_wrong_key () =
  let t = fresh () in
  wr t "/f" "locked";
  Sefs.flush t;
  match Sefs.mount ~key:"wrong-key" t.Sefs.host with
  | exception Sefs.Corrupt _ -> ()
  | _ -> Alcotest.fail "wrong key must not decrypt"

let test_page_cache () =
  let t = fresh () in
  wr t "/f" (String.make 4096 'c');
  Sefs.flush t;
  Hashtbl.reset t.Sefs.cache;
  t.Sefs.cache_misses <- 0;
  t.Sefs.cache_hits <- 0;
  ignore (rd t "/f");
  let misses_cold = t.Sefs.cache_misses in
  ignore (rd t "/f");
  ignore (rd t "/f");
  Alcotest.(check bool) "cold misses" true (misses_cold >= 1);
  Alcotest.(check int) "no further misses" misses_cold t.Sefs.cache_misses;
  Alcotest.(check bool) "hits counted" true (t.Sefs.cache_hits >= 2)

let test_plaintext_mode () =
  (* the ext4 model stores plaintext, so the host sees the content *)
  let t = Sefs.create ~encrypted:false ~key:"ignored" () in
  wr t "/f" ("plainpayload" ^ String.make 4096 'p');
  Sefs.flush t;
  let found = ref false in
  Hashtbl.iter
    (fun _ (e : Sefs.Host_store.entry) ->
      if
        Occlum_util.Bytes_util.contains ~needle:"plainpayload"
          (Bytes.of_string e.Sefs.Host_store.cipher)
      then found := true)
    t.Sefs.host.Sefs.Host_store.blocks;
  Alcotest.(check bool) "host sees plaintext" true !found;
  (* and it still round-trips across a remount *)
  let t2 = Sefs.mount ~encrypted:false ~key:"ignored" t.Sefs.host in
  Alcotest.(check int) "readable" (12 + 4096) (String.length (rd t2 "/f"))

let test_truncate () =
  let t = fresh () in
  wr t "/f" "0123456789";
  (match Sefs.lookup t "/f" with
  | Some node -> (
      match Sefs.truncate t node 4 with
      | Ok () -> Alcotest.(check string) "truncated" "0123" (rd t "/f")
      | Error _ -> Alcotest.fail "truncate")
  | None -> Alcotest.fail "lookup")

let test_image_roundtrip () =
  (* the host-side image format: serialize the untrusted store, reload
     it, and mount — the occlum_sefs workflow *)
  let t = fresh () in
  Sefs.ensure_parents t "/data/x";
  wr t "/data/f" "image payload";
  Sefs.flush t;
  let img = Sefs.Host_store.to_string t.Sefs.host in
  Alcotest.(check bool) "image is ciphertext-only" false
    (Occlum_util.Bytes_util.contains ~needle:"image payload"
       (Bytes.of_string img));
  let host2 = Sefs.Host_store.of_string img in
  let t2 = Sefs.mount ~key:"test-key" host2 in
  Alcotest.(check string) "roundtrip" "image payload" (rd t2 "/data/f");
  (* malformed images are rejected cleanly *)
  (match Sefs.Host_store.of_string "garbage" with
  | exception Sefs.Host_store.Bad_image _ -> ()
  | _ -> Alcotest.fail "bad image accepted");
  match Sefs.Host_store.of_string (String.sub img 0 (String.length img / 2)) with
  | exception Sefs.Host_store.Bad_image _ -> ()
  | _ -> Alcotest.fail "truncated image accepted"

let suite =
  [
    Alcotest.test_case "basic files" `Quick test_basic_files;
    Alcotest.test_case "host image roundtrip" `Quick test_image_roundtrip;
    Alcotest.test_case "directories" `Quick test_directories;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "multi-block files" `Quick test_multiblock;
    Alcotest.test_case "sparse files" `Quick test_sparse;
    Alcotest.test_case "persistence across remount" `Quick test_persistence;
    Alcotest.test_case "confidentiality" `Quick test_confidentiality;
    Alcotest.test_case "integrity (tamper detection)" `Quick test_integrity;
    Alcotest.test_case "wrong key" `Quick test_wrong_key;
    Alcotest.test_case "shared page cache" `Quick test_page_cache;
    Alcotest.test_case "plaintext (ext4 model) mode" `Quick test_plaintext_mode;
    Alcotest.test_case "truncate" `Quick test_truncate;
  ]
