(* End-to-end soundness fuzzing of the MMDSFI security argument
   (Theorems 5.2 / 5.3): if the verifier ACCEPTS a binary, then *running*
   it can never violate the two policies —

   - control transfers stay inside the code region C (we assert the pc
     after every single executed instruction);
   - memory accesses stay inside the data region D (we map a live
     "victim" region where an adjacent domain would be, fill it with a
     sentinel, and assert it is never written; the code bytes of C are
     likewise asserted unmodified, i.e. no self-injection).

   Inputs are (a) legitimately compiled programs and (b) random byte-flip
   mutants of them that happen to still pass the verifier — the
   interesting adversarial cases, since a flip can retarget jumps, change
   displacements, or alter immediates while remaining well-formed. *)

open Occlum_isa
open Occlum_toolchain
module R = Codegen_regs

let guard = Occlum_oelf.Oelf.guard_size
let code_base = 0x10000

type violation =
  | Pc_escape of int
  | Victim_written
  | Code_modified

let violation_to_string = function
  | Pc_escape pc -> Printf.sprintf "pc escaped the code region: 0x%x" pc
  | Victim_written -> "a store landed in the adjacent domain"
  | Code_modified -> "the code region was modified at runtime"

(* Execute [oelf] in a domain flanked by a live victim region, stepping
   one instruction at a time with full policy assertions. *)
let run_isolated ?(fuel = 60_000) (oelf : Occlum_oelf.Oelf.t) :
    (unit, violation) result =
  let open Occlum_machine in
  let code_region = Occlum_oelf.Oelf.code_region_size oelf in
  let d_base = code_base + code_region + guard in
  let d_size = Occlum_util.Bytes_util.round_up oelf.data_region_size 4096 in
  let victim_base = d_base + d_size + guard in
  let victim_size = 4 * 4096 in
  let mem =
    Mem.create
      ~size:(Occlum_util.Bytes_util.round_up (victim_base + victim_size) 4096)
  in
  Mem.map mem ~addr:code_base ~len:code_region ~perm:Mem.perm_rwx;
  Mem.map mem ~addr:d_base ~len:d_size ~perm:Mem.perm_rw;
  (* where a neighbouring SIP's domain would start: mapped and writable,
     so only the MPX policy stands between the fuzzed code and it *)
  Mem.map mem ~addr:victim_base ~len:victim_size ~perm:Mem.perm_rw;
  Mem.fill_priv mem ~addr:victim_base ~len:victim_size '\x5c';
  (* load like the LibOS loader: patch ids, install the trampoline *)
  let domain_id = 1 in
  let code = Bytes.copy oelf.code in
  Occlum_libos.Loader.patch_labels code domain_id;
  Mem.write_bytes_priv mem ~addr:code_base code;
  Mem.fill_priv mem ~addr:code_base ~len:Occlum_oelf.Oelf.trampoline_reserved '\x00';
  let tramp =
    String.concat ""
      (List.map Codec.encode
         [
           Insn.Cfi_label (Int32.of_int domain_id);
           Insn.Syscall_gate;
           Insn.Pop R.ret_scratch;
           Insn.Jmp_reg R.ret_scratch;
         ])
  in
  Mem.write_bytes_priv mem ~addr:code_base (Bytes.of_string tramp);
  Mem.write_bytes_priv mem ~addr:d_base oelf.data;
  let code_snapshot = Mem.read_bytes_priv mem ~addr:code_base ~len:code_region in
  let cpu = Cpu.create () in
  cpu.Cpu.pc <- code_base + oelf.entry;
  Cpu.set cpu Reg.sp (Int64.of_int (d_base + oelf.data_region_size - 16));
  Cpu.set cpu R.code_base (Int64.of_int code_base);
  Cpu.set cpu R.data_base (Int64.of_int d_base);
  Cpu.set cpu R.ret_scratch (Int64.of_int code_base);
  Cpu.set_bnd cpu Reg.bnd0
    { lower = Int64.of_int d_base; upper = Int64.of_int (d_base + d_size - 1) };
  let lv = Occlum_libos.Loader.cfi_label_value domain_id in
  Cpu.set_bnd cpu Reg.bnd1 { lower = lv; upper = lv };
  let in_code pc = pc >= code_base && pc < code_base + code_region in
  let victim_intact () =
    let b = Mem.read_bytes_priv mem ~addr:victim_base ~len:victim_size in
    let ok = ref true in
    Bytes.iter (fun c -> if c <> '\x5c' then ok := false) b;
    !ok
  in
  (* the pc policy is asserted after every instruction (O(1)); the
     memory policies are audited periodically and at the end — a
     violation between audits is still caught at the next one *)
  let rec step n =
    if n = 0 then Ok () (* ran out of fuel without violating anything *)
    else
      match Interp.step mem cpu with
      | Some Interp.Stop_syscall ->
          (* emulate exit-only syscalls: anything else just returns 0 and
             resumes through the trampoline *)
          let nr = Int64.to_int (Cpu.get cpu (Reg.of_int Occlum_abi.Abi.Regs.sys_nr)) in
          if nr = Occlum_abi.Abi.Sys.exit then Ok ()
          else begin
            Cpu.set cpu R.result 0L;
            check n
          end
      | Some (Interp.Stop_fault _) -> Ok () (* contained: the policy held *)
      | Some Interp.Stop_quantum | None -> check n
  and check n =
    if not (in_code cpu.Cpu.pc) then Error (Pc_escape cpu.Cpu.pc)
    else if n mod 1024 = 0 && not (victim_intact ()) then Error Victim_written
    else step (n - 1)
  in
  match step fuel with
  | Error v -> Error v
  | Ok () ->
      if not (victim_intact ()) then Error Victim_written
      else if
        not
          (Bytes.equal code_snapshot
             (Mem.read_bytes_priv mem ~addr:code_base ~len:code_region))
      then Error Code_modified
      else Ok ()

let base_programs =
  lazy
    (List.map
       (fun seed ->
         Compile.compile_exn ~config:Codegen.sfi
           (Runtime.program
              ~globals:[ ("buf", 256) ]
              [
                Ast.func ~reg_vars:[ "p" ] "main" []
                  Ast.
                    [
                      Let ("k", i 0);
                      Assign ("p", Global_addr "buf");
                      While
                        ( v "k" <: i (8 + seed),
                          [
                            Store (v "p", v "k" *: i seed);
                            Assign ("p", v "p" +: i 8);
                            Assign ("k", v "k" +: i 1);
                          ] );
                      Expr (Call ("print_int", [ Load (Global_addr "buf" +: i 16) ]));
                      Return (i 0);
                    ];
              ]))
       [ 1; 3; 7 ])

let test_compiled_binaries_sound () =
  List.iter
    (fun oelf ->
      match run_isolated oelf with
      | Ok () -> ()
      | Error v -> Alcotest.fail (violation_to_string v))
    (Lazy.force base_programs);
  (* the workload binaries too *)
  List.iter
    (fun (name, prog) ->
      let oelf = Compile.compile_exn ~config:Codegen.sfi prog in
      match run_isolated ~fuel:200_000 oelf with
      | Ok () -> ()
      | Error v -> Alcotest.fail (name ^ ": " ^ violation_to_string v))
    (Occlum_workloads.Spec.all ~scale:1)

(* The adversarial property: byte-flipped mutants that still pass the
   verifier must still be contained at runtime. *)
let prop_verified_mutants_are_contained =
  QCheck.Test.make ~name:"verifier-accepted mutants cannot break isolation"
    ~count:600
    QCheck.(pair (make Gen.(int_range 0 2)) (make Gen.(int_range 0 1_000_000)))
    (fun (which, seed) ->
      let oelf = List.nth (Lazy.force base_programs) which in
      let code = Bytes.copy oelf.Occlum_oelf.Oelf.code in
      let reserved = Occlum_oelf.Oelf.trampoline_reserved in
      let prng = Occlum_util.Prng.create seed in
      (* flip 1-3 bytes *)
      for _ = 0 to Occlum_util.Prng.int prng 3 do
        let pos = reserved + Occlum_util.Prng.int prng (Bytes.length code - reserved) in
        Bytes.set code pos
          (Char.chr
             (Char.code (Bytes.get code pos)
             lxor (1 + Occlum_util.Prng.int prng 255)))
      done;
      let mutant = { oelf with Occlum_oelf.Oelf.code = code } in
      match Occlum_verifier.Verify.verify mutant with
      | Error _ -> true (* rejected: nothing to check *)
      | Ok _ -> (
          match run_isolated mutant with
          | Ok () -> true
          | Error v ->
              QCheck.Test.fail_reportf
                "mutant (prog %d, seed %d) verified but violated isolation: %s"
                which seed (violation_to_string v)))

let suite =
  [
    Alcotest.test_case "compiled binaries are contained" `Slow
      test_compiled_binaries_sound;
    QCheck_alcotest.to_alcotest prop_verified_mutants_are_contained;
  ]
