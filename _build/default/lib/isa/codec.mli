(** Variable-length binary encoding of OASM instructions.

    Two properties the system depends on:

    - {b cfi_label nonexistence} (§4.2 property 3): the byte [0xF4] opens
      a cfi_label and appears in no other instruction's encoding —
      immediate/displacement payloads are escaped. A byte-by-byte scan
      for {!cfi_magic} therefore finds exactly the cfi_labels of any
      toolchain-produced binary.
    - {b variable length}: a jump into the middle of an instruction
      decodes differently or fails, the hazard Stage-1 complete
      disassembly defends against. *)

val cfi_magic : string
(** The 4-byte prefix of every cfi_label encoding. *)

val cfi_label_size : int
(** 8 bytes: magic + 32-bit domain id. *)

val forbidden_byte : char
(** [0xF4] — never emitted outside a cfi_label. *)

type error = Truncated | Bad_opcode of int | Bad_operand of string

val error_to_string : error -> string

val encode : Insn.t -> string
(** @raise Invalid_argument on out-of-range operands (scale, sizes,
    cfi_label ids outside [0, 65536)). *)

val encode_into : Buffer.t -> Insn.t -> unit

val length : Insn.t -> int
(** [length i = String.length (encode i)]. *)

val decode :
  Bytes.t -> pos:int -> limit:int -> (Insn.t * int, error) result
(** [decode data ~pos ~limit] decodes one instruction at [pos], returning
    it with its encoded length. Total: never raises. *)

val encode_program : Insn.t list -> Bytes.t * int list
(** Encode a sequence, also returning each instruction's offset. *)
