lib/isa/codec.ml: Array Buffer Bytes Char Insn Int32 Int64 List Printf Reg String
