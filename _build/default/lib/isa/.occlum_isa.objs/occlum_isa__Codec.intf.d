lib/isa/codec.mli: Buffer Bytes Insn
