(** The OASM instruction set: the simulated stand-in for x86-64 + MPX +
    SGX opcodes, deliberately shaped so that every row of the paper's
    verification tables exists here — Figure 3's four control-transfer
    categories, Figure 4's five memory-operand categories, and Stage 2's
    dangerous-instruction classes. *)

(** A memory operand. *)
type mem =
  | Sib of { base : Reg.t; index : Reg.t option; scale : int; disp : int }
      (** scale–index–base, the common form *)
  | Rip_rel of int  (** displacement from the end of the instruction *)
  | Abs of int64    (** direct memory offset; always rejected (Fig. 4) *)

type operand = O_reg of Reg.t | O_imm of int64

type alu_op = Add | Sub | Mul | Divu | Remu | And | Or | Xor | Shl | Shr
(** [Divu]/[Remu] are unsigned; division by zero faults. *)

type cond = Eq | Ne | Lt | Le | Gt | Ge
(** Signed comparisons over the flags set by [Cmp]. *)

(** Effective-address operand of a bound check: a register value
    (cfi_guard) or a memory operand's address (mem_guard). *)
type ea = Ea_reg of Reg.t | Ea_mem of mem

type t =
  | Nop
  | Mov_imm of Reg.t * int64
  | Mov_reg of Reg.t * Reg.t
  | Load of { dst : Reg.t; src : mem; size : int }  (** size 1 or 8 *)
  | Store of { dst : mem; src : Reg.t; size : int }
  | Push of Reg.t
  | Pop of Reg.t
  | Lea of Reg.t * mem
  | Alu of alu_op * Reg.t * operand
  | Cmp of Reg.t * operand
  | Jmp of int  (** direct, relative to the end of the instruction *)
  | Jcc of cond * int
  | Call of int
  | Jmp_reg of Reg.t   (** register-based indirect: needs a cfi_guard *)
  | Call_reg of Reg.t
  | Jmp_mem of mem     (** memory-based indirect: rejected (Fig. 3) *)
  | Call_mem of mem
  | Ret                (** return-based indirect: rejected (Fig. 3) *)
  | Ret_imm of int
  | Syscall_gate       (** the LibOS trampoline's gate; loader-only *)
  | Hlt
  | Bndcl of Reg.bnd * ea  (** MPX lower-bound check *)
  | Bndcu of Reg.bnd * ea  (** MPX upper-bound check *)
  | Bndmk of Reg.bnd * mem (** bound creation: dangerous (Stage 2) *)
  | Bndmov of Reg.bnd * Reg.bnd
  | Cfi_label of int32     (** the special 8-byte NOP; payload = domain id *)
  | Eexit
  | Emodpe
  | Eaccept
  | Xrstor
  | Wrfsbase of Reg.t
  | Wrgsbase of Reg.t
  | Vscatter of { base : Reg.t; index : Reg.t; scale : int; src : Reg.t }
      (** vector SIB: one instruction, many non-contiguous stores;
          rejected (Fig. 4) *)

(** {1 Stage-2 classification} *)

type danger =
  | Sgx_instruction   (** eexit / emodpe / eaccept *)
  | Mpx_modification  (** bndmk / bndmov *)
  | Misc_privileged   (** xrstor / wrfsbase / wrgsbase / hlt *)
  | Libos_gate        (** syscall_gate outside the loader's trampoline *)

val danger_of : t -> danger option

(** {1 Stage-3 classification (Figure 3)} *)

type control_transfer =
  | Ct_direct of { cond : bool; rel : int }
  | Ct_register of Reg.t
  | Ct_memory
  | Ct_return
  | Ct_none

val control_transfer_of : t -> control_transfer

(** {1 Stage-4 classification (Figure 4)} *)

type mem_access =
  | Ma_sib of { base : Reg.t; index : Reg.t option; scale : int; disp : int;
                is_store : bool; size : int }
  | Ma_implicit of { push : bool }  (** push/pop through sp *)
  | Ma_rip_rel of { disp : int; is_store : bool; size : int }
  | Ma_direct_offset
  | Ma_vector_sib
  | Ma_none

val mem_access_of : t -> mem_access

(** {1 Printing} *)

val alu_name : alu_op -> string
val cond_name : cond -> string
val mem_to_string : mem -> string
val operand_to_string : operand -> string
val ea_to_string : ea -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit
