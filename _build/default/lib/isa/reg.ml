(* General-purpose and MPX bound registers of the simulated ISA ("OASM").

   Conventions mirror the paper's use of x86-64:
   - [sp] (R14) is the stack pointer used by push/pop/call.
   - [scratch] (R15) is reserved by the MMDSFI toolchain for cfi_guard
     sequences and is never allocated to user values.
   - [bnd0] holds the data-region bounds [D.begin, D.end); [bnd1] holds
     the degenerate range [cfi_magic, cfi_magic] used for the equality
     test in cfi_guard (Figure 2b). *)

type t = int (* 0..15 *)

let count = 16
let of_int i = if i < 0 || i >= count then invalid_arg "Reg.of_int" else i
let to_int r = r

let r0 = 0
let r1 = 1
let r2 = 2
let r3 = 3
let r4 = 4
let r5 = 5
let r6 = 6
let r7 = 7
let r8 = 8
let r9 = 9
let r10 = 10
let r11 = 11
let r12 = 12
let r13 = 13
let sp = 14
let scratch = 15

let name r =
  match r with
  | 14 -> "sp"
  | 15 -> "scr"
  | n -> Printf.sprintf "r%d" n

let pp fmt r = Format.pp_print_string fmt (name r)

type bnd = int (* 0..3 *)

let bnd_count = 4
let bnd_of_int i = if i < 0 || i >= bnd_count then invalid_arg "Reg.bnd_of_int" else i
let bnd_to_int b = b
let bnd0 = 0
let bnd1 = 1
let bnd2 = 2
let bnd3 = 3
let bnd_name b = Printf.sprintf "bnd%d" b
