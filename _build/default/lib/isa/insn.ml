(* The OASM instruction set.

   This is the simulated stand-in for x86-64 + MPX + SGX opcodes. It is
   deliberately shaped so that every row of the paper's verification
   tables exists here:

   Figure 3 (control transfers): direct [Jmp]/[Jcc]/[Call],
   register-based indirect [Jmp_reg]/[Call_reg], memory-based indirect
   [Jmp_mem]/[Call_mem], return-based [Ret]/[Ret_imm].

   Figure 4 (memory operands): SIB ([Mem.Sib]), implicit register-based
   ([Push]/[Pop]), RIP-relative ([Mem.Rip_rel]), direct memory offset
   ([Mem.Abs]), vector SIB ([Vscatter]).

   Stage-2 dangerous instructions: SGX ([Eexit]/[Emodpe]/[Eaccept]), MPX
   bound-modifying ([Bndmk]/[Bndmov]), miscellaneous ([Xrstor],
   [Wrfsbase]/[Wrgsbase]), plus the loader-only [Syscall_gate] and
   [Hlt]. *)

type mem =
  | Sib of { base : Reg.t; index : Reg.t option; scale : int; disp : int }
  | Rip_rel of int  (* displacement from the end of the instruction *)
  | Abs of int64    (* direct memory offset; always rejected by the verifier *)

type operand = O_reg of Reg.t | O_imm of int64

type alu_op = Add | Sub | Mul | Divu | Remu | And | Or | Xor | Shl | Shr

type cond = Eq | Ne | Lt | Le | Gt | Ge

(* Effective-address operand of a bound check: either the address already
   in a register (cfi_guard) or the effective address of a memory operand
   (mem_guard). *)
type ea = Ea_reg of Reg.t | Ea_mem of mem

type t =
  | Nop
  | Mov_imm of Reg.t * int64
  | Mov_reg of Reg.t * Reg.t
  | Load of { dst : Reg.t; src : mem; size : int }  (* size = 1 or 8 *)
  | Store of { dst : mem; src : Reg.t; size : int }
  | Push of Reg.t
  | Pop of Reg.t
  | Lea of Reg.t * mem
  | Alu of alu_op * Reg.t * operand
  | Cmp of Reg.t * operand
  | Jmp of int       (* relative to end of instruction *)
  | Jcc of cond * int
  | Call of int
  | Jmp_reg of Reg.t
  | Call_reg of Reg.t
  | Jmp_mem of mem
  | Call_mem of mem
  | Ret
  | Ret_imm of int
  | Syscall_gate     (* trampoline into the LibOS; loader-inserted only *)
  | Hlt
  | Bndcl of Reg.bnd * ea
  | Bndcu of Reg.bnd * ea
  | Bndmk of Reg.bnd * mem
  | Bndmov of Reg.bnd * Reg.bnd
  | Cfi_label of int32  (* the special 8-byte NOP; payload = domain id *)
  | Eexit
  | Emodpe
  | Eaccept
  | Xrstor
  | Wrfsbase of Reg.t
  | Wrgsbase of Reg.t
  | Vscatter of { base : Reg.t; index : Reg.t; scale : int; src : Reg.t }

(* --- Stage-2 classification: dangerous instructions ------------------- *)

type danger =
  | Sgx_instruction       (* eexit / emodpe / eaccept *)
  | Mpx_modification      (* bndmk / bndmov *)
  | Misc_privileged       (* xrstor / wrfsbase / wrgsbase / hlt *)
  | Libos_gate            (* syscall_gate: only the loader may insert it *)

let danger_of = function
  | Eexit | Emodpe | Eaccept -> Some Sgx_instruction
  | Bndmk _ | Bndmov _ -> Some Mpx_modification
  | Xrstor | Wrfsbase _ | Wrgsbase _ | Hlt -> Some Misc_privileged
  | Syscall_gate -> Some Libos_gate
  | Nop | Mov_imm _ | Mov_reg _ | Load _ | Store _ | Push _ | Pop _ | Lea _
  | Alu _ | Cmp _ | Jmp _ | Jcc _ | Call _ | Jmp_reg _ | Call_reg _
  | Jmp_mem _ | Call_mem _ | Ret | Ret_imm _ | Bndcl _ | Bndcu _
  | Cfi_label _ | Vscatter _ ->
      None

(* --- Stage-3 classification: control transfers (Figure 3) ------------- *)

type control_transfer =
  | Ct_direct of { cond : bool; rel : int }  (* target computable statically *)
  | Ct_register of Reg.t                     (* needs a cfi_guard *)
  | Ct_memory                                (* rejected *)
  | Ct_return                                (* rejected *)
  | Ct_none

let control_transfer_of = function
  | Jmp rel -> Ct_direct { cond = false; rel }
  | Call rel -> Ct_direct { cond = false; rel }
  | Jcc (_, rel) -> Ct_direct { cond = true; rel }
  | Jmp_reg r | Call_reg r -> Ct_register r
  | Jmp_mem _ | Call_mem _ -> Ct_memory
  | Ret | Ret_imm _ -> Ct_return
  | Nop | Mov_imm _ | Mov_reg _ | Load _ | Store _ | Push _ | Pop _ | Lea _
  | Alu _ | Cmp _ | Syscall_gate | Hlt | Bndcl _ | Bndcu _ | Bndmk _
  | Bndmov _ | Cfi_label _ | Eexit | Emodpe | Eaccept | Xrstor | Wrfsbase _
  | Wrgsbase _ | Vscatter _ ->
      Ct_none

(* --- Stage-4 classification: memory accesses (Figure 4) --------------- *)

type mem_access =
  | Ma_sib of { base : Reg.t; index : Reg.t option; scale : int; disp : int;
                is_store : bool; size : int }
  | Ma_implicit of { push : bool }  (* push/pop through sp *)
  | Ma_rip_rel of { disp : int; is_store : bool; size : int }
  | Ma_direct_offset                (* rejected *)
  | Ma_vector_sib                   (* rejected *)
  | Ma_none

let mem_access_of = function
  | Load { src = Sib { base; index; scale; disp }; size; _ } ->
      Ma_sib { base; index; scale; disp; is_store = false; size }
  | Store { dst = Sib { base; index; scale; disp }; size; _ } ->
      Ma_sib { base; index; scale; disp; is_store = true; size }
  | Load { src = Rip_rel disp; size; _ } -> Ma_rip_rel { disp; is_store = false; size }
  | Store { dst = Rip_rel disp; size; _ } -> Ma_rip_rel { disp; is_store = true; size }
  | Load { src = Abs _; _ } | Store { dst = Abs _; _ } -> Ma_direct_offset
  | Push _ -> Ma_implicit { push = true }
  | Pop _ -> Ma_implicit { push = false }
  | Vscatter _ -> Ma_vector_sib
  | Nop | Mov_imm _ | Mov_reg _ | Lea _ | Alu _ | Cmp _ | Jmp _ | Jcc _
  | Call _ | Jmp_reg _ | Call_reg _ | Jmp_mem _ | Call_mem _ | Ret
  | Ret_imm _ | Syscall_gate | Hlt | Bndcl _ | Bndcu _ | Bndmk _ | Bndmov _
  | Cfi_label _ | Eexit | Emodpe | Eaccept | Xrstor | Wrfsbase _
  | Wrgsbase _ ->
      Ma_none

(* Call and Ret also access the stack implicitly; the verifier treats the
   stack through the same SIB range analysis as push/pop. *)

(* --- Pretty printing --------------------------------------------------- *)

let alu_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Divu -> "divu"
  | Remu -> "remu" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Shr -> "shr"

let cond_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let mem_to_string = function
  | Sib { base; index; scale; disp } ->
      let idx =
        match index with
        | None -> ""
        | Some i -> Printf.sprintf "+%s*%d" (Reg.name i) scale
      in
      Printf.sprintf "[%s%s%+d]" (Reg.name base) idx disp
  | Rip_rel d -> Printf.sprintf "[rip%+d]" d
  | Abs a -> Printf.sprintf "[abs 0x%Lx]" a

let operand_to_string = function
  | O_reg r -> Reg.name r
  | O_imm i -> Printf.sprintf "$%Ld" i

let ea_to_string = function
  | Ea_reg r -> Reg.name r
  | Ea_mem m -> mem_to_string m

let to_string = function
  | Nop -> "nop"
  | Mov_imm (r, i) -> Printf.sprintf "mov %s, $%Ld" (Reg.name r) i
  | Mov_reg (d, s) -> Printf.sprintf "mov %s, %s" (Reg.name d) (Reg.name s)
  | Load { dst; src; size } ->
      Printf.sprintf "load%d %s, %s" size (Reg.name dst) (mem_to_string src)
  | Store { dst; src; size } ->
      Printf.sprintf "store%d %s, %s" size (mem_to_string dst) (Reg.name src)
  | Push r -> Printf.sprintf "push %s" (Reg.name r)
  | Pop r -> Printf.sprintf "pop %s" (Reg.name r)
  | Lea (r, m) -> Printf.sprintf "lea %s, %s" (Reg.name r) (mem_to_string m)
  | Alu (op, d, o) ->
      Printf.sprintf "%s %s, %s" (alu_name op) (Reg.name d) (operand_to_string o)
  | Cmp (r, o) -> Printf.sprintf "cmp %s, %s" (Reg.name r) (operand_to_string o)
  | Jmp rel -> Printf.sprintf "jmp %+d" rel
  | Jcc (c, rel) -> Printf.sprintf "j%s %+d" (cond_name c) rel
  | Call rel -> Printf.sprintf "call %+d" rel
  | Jmp_reg r -> Printf.sprintf "jmp *%s" (Reg.name r)
  | Call_reg r -> Printf.sprintf "call *%s" (Reg.name r)
  | Jmp_mem m -> Printf.sprintf "jmp *%s" (mem_to_string m)
  | Call_mem m -> Printf.sprintf "call *%s" (mem_to_string m)
  | Ret -> "ret"
  | Ret_imm n -> Printf.sprintf "ret %d" n
  | Syscall_gate -> "syscall_gate"
  | Hlt -> "hlt"
  | Bndcl (b, ea) -> Printf.sprintf "bndcl %s, %s" (Reg.bnd_name b) (ea_to_string ea)
  | Bndcu (b, ea) -> Printf.sprintf "bndcu %s, %s" (Reg.bnd_name b) (ea_to_string ea)
  | Bndmk (b, m) -> Printf.sprintf "bndmk %s, %s" (Reg.bnd_name b) (mem_to_string m)
  | Bndmov (d, s) -> Printf.sprintf "bndmov %s, %s" (Reg.bnd_name d) (Reg.bnd_name s)
  | Cfi_label id -> Printf.sprintf "cfi_label <%ld>" id
  | Eexit -> "eexit"
  | Emodpe -> "emodpe"
  | Eaccept -> "eaccept"
  | Xrstor -> "xrstor"
  | Wrfsbase r -> Printf.sprintf "wrfsbase %s" (Reg.name r)
  | Wrgsbase r -> Printf.sprintf "wrgsbase %s" (Reg.name r)
  | Vscatter { base; index; scale; src } ->
      Printf.sprintf "vscatter [%s+%s*%d], %s" (Reg.name base) (Reg.name index)
        scale (Reg.name src)

let pp fmt i = Format.pp_print_string fmt (to_string i)
