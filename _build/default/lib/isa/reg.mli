(** General-purpose and MPX bound registers of the simulated ISA.

    Conventions (mirroring the paper's use of x86-64): {!sp} is the stack
    pointer used by push/pop/call; {!scratch} is reserved by the MMDSFI
    toolchain for cfi_guard sequences and never holds user values;
    [bnd0] holds the data-region bounds and [bnd1] the degenerate
    [cfi_label, cfi_label] range of Figure 2b. *)

type t
(** A general-purpose register, r0..r13 plus [sp] and [scr]. *)

val count : int
(** 16. *)

val of_int : int -> t
(** [of_int i] is register [i]. @raise Invalid_argument unless 0 <= i < 16. *)

val to_int : t -> int

val r0 : t
val r1 : t
val r2 : t
val r3 : t
val r4 : t
val r5 : t
val r6 : t
val r7 : t
val r8 : t
val r9 : t
val r10 : t
val r11 : t
val r12 : t
val r13 : t

val sp : t
(** The stack pointer (r14). *)

val scratch : t
(** The MMDSFI scratch register (r15), written only by cfi_guard. *)

val name : t -> string
val pp : Format.formatter -> t -> unit

type bnd
(** An MPX bound register, bnd0..bnd3. *)

val bnd_count : int
val bnd_of_int : int -> bnd
val bnd_to_int : bnd -> int

val bnd0 : bnd
(** Initialized by the LibOS to the SIP's data-region range. *)

val bnd1 : bnd
(** Initialized to [\[cfi_label, cfi_label\]] — the equality test used by
    cfi_guard. *)

val bnd2 : bnd
val bnd3 : bnd
val bnd_name : bnd -> string
