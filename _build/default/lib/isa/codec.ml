(* Variable-length binary encoding of OASM instructions.

   Two properties the rest of the system depends on:

   1. cfi_label nonexistence (paper §4.2, property 3): the byte 0xF4
      opens a cfi_label and appears in NO other instruction's encoding.
      Opcode bytes are all < 0xF4, register/flag bytes are < 0x10, and
      immediate/displacement payloads are escaped: a payload byte 0xF4 is
      stored as 0xF3 with a bit set in a trailing fixup byte (itself
      always < 0x10). A byte-by-byte scan for the 4-byte magic therefore
      finds exactly the cfi_labels in any toolchain-produced binary.

   2. Variable length: different instructions have different sizes, so a
      jump into the middle of an instruction either decodes differently
      or fails to decode — precisely the hazard Stage-1 complete
      disassembly (Algorithm 1) must and does handle. *)

let cfi_magic = "\xF4\x1A\xBE\x11"
let cfi_label_size = 8
let forbidden_byte = '\xF4'

type error = Truncated | Bad_opcode of int | Bad_operand of string

let error_to_string = function
  | Truncated -> "truncated instruction"
  | Bad_opcode b -> Printf.sprintf "bad opcode 0x%02x" b
  | Bad_operand msg -> Printf.sprintf "bad operand: %s" msg

exception Decode_error of error

(* --- encoding helpers -------------------------------------------------- *)

let put_esc buf v n_bytes =
  (* Store [n_bytes] little-endian bytes of [v], escaping 0xF4, followed
     by ceil(n_bytes/4) fixup nibble bytes. *)
  let stored = Bytes.create n_bytes in
  let fix = Array.make ((n_bytes + 3) / 4) 0 in
  for i = 0 to n_bytes - 1 do
    let b = Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL) in
    if b = 0xF4 then begin
      Bytes.set stored i '\xF3';
      fix.(i / 4) <- fix.(i / 4) lor (1 lsl (i mod 4))
    end
    else Bytes.set stored i (Char.chr b)
  done;
  Buffer.add_bytes buf stored;
  Array.iter (fun f -> Buffer.add_char buf (Char.chr f)) fix

let put_esc32 buf v = put_esc buf (Int64.of_int v) 4
let put_esc64 buf v = put_esc buf v 8

let opcode_nop = 0x10
let opcode_mov_imm = 0x11
let opcode_mov_reg = 0x12
let opcode_load = 0x13
let opcode_store = 0x14
let opcode_push = 0x15
let opcode_pop = 0x16
let opcode_lea = 0x17
let opcode_alu_rr = 0x18
let opcode_alu_ri = 0x19
let opcode_cmp_rr = 0x1A
let opcode_cmp_ri = 0x1B
let opcode_jmp = 0x20
let opcode_jcc = 0x21
let opcode_call = 0x22
let opcode_jmp_reg = 0x23
let opcode_call_reg = 0x24
let opcode_jmp_mem = 0x25
let opcode_call_mem = 0x26
let opcode_ret = 0x27
let opcode_ret_imm = 0x28
let opcode_syscall_gate = 0x29
let opcode_hlt = 0x2A
let opcode_bndcl = 0x30
let opcode_bndcu = 0x31
let opcode_bndmk = 0x32
let opcode_bndmov = 0x33
let opcode_eexit = 0x40
let opcode_emodpe = 0x41
let opcode_eaccept = 0x42
let opcode_xrstor = 0x43
let opcode_wrfsbase = 0x44
let opcode_wrgsbase = 0x45
let opcode_vscatter = 0x50
let no_index = 0x1E

let alu_code : Insn.alu_op -> int = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Divu -> 3 | Remu -> 4 | And -> 5
  | Or -> 6 | Xor -> 7 | Shl -> 8 | Shr -> 9

let alu_of_code = function
  | 0 -> Some Insn.Add | 1 -> Some Insn.Sub | 2 -> Some Insn.Mul
  | 3 -> Some Insn.Divu | 4 -> Some Insn.Remu | 5 -> Some Insn.And
  | 6 -> Some Insn.Or | 7 -> Some Insn.Xor | 8 -> Some Insn.Shl
  | 9 -> Some Insn.Shr | _ -> None

let cond_code : Insn.cond -> int = function
  | Eq -> 0 | Ne -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5

let cond_of_code = function
  | 0 -> Some Insn.Eq | 1 -> Some Insn.Ne | 2 -> Some Insn.Lt
  | 3 -> Some Insn.Le | 4 -> Some Insn.Gt | 5 -> Some Insn.Ge | _ -> None

let put_mem buf (m : Insn.mem) =
  match m with
  | Sib { base; index; scale; disp } ->
      if scale <> 1 && scale <> 2 && scale <> 4 && scale <> 8 then
        invalid_arg "Codec: scale must be 1/2/4/8";
      Buffer.add_char buf '\x00';
      Buffer.add_char buf (Char.chr (Reg.to_int base));
      Buffer.add_char buf
        (Char.chr (match index with None -> no_index | Some r -> Reg.to_int r));
      Buffer.add_char buf (Char.chr scale);
      put_esc32 buf disp
  | Rip_rel disp ->
      Buffer.add_char buf '\x01';
      put_esc32 buf disp
  | Abs addr ->
      Buffer.add_char buf '\x02';
      put_esc64 buf addr

let put_reg buf r = Buffer.add_char buf (Char.chr (Reg.to_int r))
let put_bnd buf b = Buffer.add_char buf (Char.chr (Reg.bnd_to_int b))

let check_size size =
  if size <> 1 && size <> 8 then invalid_arg "Codec: access size must be 1 or 8"

let encode_into buf (i : Insn.t) =
  let op c = Buffer.add_char buf (Char.chr c) in
  match i with
  | Nop -> op opcode_nop
  | Mov_imm (r, v) ->
      op opcode_mov_imm;
      put_reg buf r;
      put_esc64 buf v
  | Mov_reg (d, s) ->
      op opcode_mov_reg;
      put_reg buf d;
      put_reg buf s
  | Load { dst; src; size } ->
      check_size size;
      op opcode_load;
      put_reg buf dst;
      op size;
      put_mem buf src
  | Store { dst; src; size } ->
      check_size size;
      op opcode_store;
      put_reg buf src;
      op size;
      put_mem buf dst
  | Push r ->
      op opcode_push;
      put_reg buf r
  | Pop r ->
      op opcode_pop;
      put_reg buf r
  | Lea (r, m) ->
      op opcode_lea;
      put_reg buf r;
      put_mem buf m
  | Alu (o, d, O_reg s) ->
      op opcode_alu_rr;
      op (alu_code o);
      put_reg buf d;
      put_reg buf s
  | Alu (o, d, O_imm v) ->
      op opcode_alu_ri;
      op (alu_code o);
      put_reg buf d;
      put_esc64 buf v
  | Cmp (a, O_reg b) ->
      op opcode_cmp_rr;
      put_reg buf a;
      put_reg buf b
  | Cmp (a, O_imm v) ->
      op opcode_cmp_ri;
      put_reg buf a;
      put_esc64 buf v
  | Jmp rel ->
      op opcode_jmp;
      put_esc32 buf rel
  | Jcc (c, rel) ->
      op opcode_jcc;
      op (cond_code c);
      put_esc32 buf rel
  | Call rel ->
      op opcode_call;
      put_esc32 buf rel
  | Jmp_reg r ->
      op opcode_jmp_reg;
      put_reg buf r
  | Call_reg r ->
      op opcode_call_reg;
      put_reg buf r
  | Jmp_mem m ->
      op opcode_jmp_mem;
      put_mem buf m
  | Call_mem m ->
      op opcode_call_mem;
      put_mem buf m
  | Ret -> op opcode_ret
  | Ret_imm n ->
      op opcode_ret_imm;
      put_esc32 buf n
  | Syscall_gate -> op opcode_syscall_gate
  | Hlt -> op opcode_hlt
  | Bndcl (b, ea) ->
      op opcode_bndcl;
      put_bnd buf b;
      (match ea with
      | Ea_reg r ->
          op 0;
          put_reg buf r
      | Ea_mem m ->
          op 1;
          put_mem buf m)
  | Bndcu (b, ea) ->
      op opcode_bndcu;
      put_bnd buf b;
      (match ea with
      | Ea_reg r ->
          op 0;
          put_reg buf r
      | Ea_mem m ->
          op 1;
          put_mem buf m)
  | Bndmk (b, m) ->
      op opcode_bndmk;
      put_bnd buf b;
      put_mem buf m
  | Bndmov (d, s) ->
      op opcode_bndmov;
      put_bnd buf d;
      put_bnd buf s
  | Cfi_label id ->
      if Int32.compare id 0l < 0 || Int32.compare id 0x10000l >= 0 then
        invalid_arg "Codec: cfi_label domain id must be in [0, 65536)";
      Buffer.add_string buf cfi_magic;
      Buffer.add_char buf (Char.chr (Int32.to_int id land 0xFF));
      Buffer.add_char buf (Char.chr ((Int32.to_int id lsr 8) land 0xFF));
      Buffer.add_char buf '\x00';
      Buffer.add_char buf '\x00'
  | Eexit -> op opcode_eexit
  | Emodpe -> op opcode_emodpe
  | Eaccept -> op opcode_eaccept
  | Xrstor -> op opcode_xrstor
  | Wrfsbase r ->
      op opcode_wrfsbase;
      put_reg buf r
  | Wrgsbase r ->
      op opcode_wrgsbase;
      put_reg buf r
  | Vscatter { base; index; scale; src } ->
      op opcode_vscatter;
      put_reg buf base;
      put_reg buf index;
      op scale;
      put_reg buf src

let encode i =
  let buf = Buffer.create 16 in
  encode_into buf i;
  Buffer.contents buf

let length i = String.length (encode i)

(* --- decoding ----------------------------------------------------------- *)

type cursor = { data : Bytes.t; limit : int; mutable pos : int }

let byte cur =
  if cur.pos >= cur.limit then raise (Decode_error Truncated);
  let b = Char.code (Bytes.get cur.data cur.pos) in
  cur.pos <- cur.pos + 1;
  b

let get_reg cur =
  let b = byte cur in
  if b >= Reg.count then raise (Decode_error (Bad_operand "register"));
  Reg.of_int b

let get_bnd cur =
  let b = byte cur in
  if b >= Reg.bnd_count then raise (Decode_error (Bad_operand "bound register"));
  Reg.bnd_of_int b

let get_esc cur n_bytes =
  let stored = Array.init n_bytes (fun _ -> byte cur) in
  let n_fix = (n_bytes + 3) / 4 in
  let fix = Array.init n_fix (fun _ -> byte cur) in
  Array.iter
    (fun f -> if f > 0x0F then raise (Decode_error (Bad_operand "fixup byte")))
    fix;
  let v = ref 0L in
  for i = n_bytes - 1 downto 0 do
    let b =
      if fix.(i / 4) land (1 lsl (i mod 4)) <> 0 then
        if stored.(i) = 0xF3 then 0xF4
        else raise (Decode_error (Bad_operand "fixup applied to non-escape byte"))
      else stored.(i)
    in
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int b)
  done;
  !v

let get_esc32 cur =
  let v = get_esc cur 4 in
  (* sign-extend from 32 bits *)
  Int64.to_int (Int64.shift_right (Int64.shift_left v 32) 32)

let get_esc64 cur = get_esc cur 8

let get_mem cur : Insn.mem =
  match byte cur with
  | 0 ->
      let base = get_reg cur in
      let index_byte = byte cur in
      let index =
        if index_byte = no_index then None
        else if index_byte < Reg.count then Some (Reg.of_int index_byte)
        else raise (Decode_error (Bad_operand "index register"))
      in
      let scale = byte cur in
      if scale <> 1 && scale <> 2 && scale <> 4 && scale <> 8 then
        raise (Decode_error (Bad_operand "scale"));
      let disp = get_esc32 cur in
      Sib { base; index; scale; disp }
  | 1 -> Rip_rel (get_esc32 cur)
  | 2 -> Abs (get_esc64 cur)
  | _ -> raise (Decode_error (Bad_operand "memory operand kind"))

let get_size cur =
  let s = byte cur in
  if s <> 1 && s <> 8 then raise (Decode_error (Bad_operand "access size"));
  s

let get_ea cur : Insn.ea =
  match byte cur with
  | 0 -> Ea_reg (get_reg cur)
  | 1 -> Ea_mem (get_mem cur)
  | _ -> raise (Decode_error (Bad_operand "effective-address kind"))

let decode_cursor cur : Insn.t =
  let opcode = byte cur in
  if opcode = 0xF4 then begin
    (* cfi_label: the remaining three magic bytes must match exactly. *)
    let m1 = byte cur and m2 = byte cur and m3 = byte cur in
    if m1 <> 0x1A || m2 <> 0xBE || m3 <> 0x11 then
      raise (Decode_error (Bad_opcode 0xF4));
    let b0 = byte cur and b1 = byte cur and b2 = byte cur and b3 = byte cur in
    if b2 <> 0 || b3 <> 0 then
      raise (Decode_error (Bad_operand "cfi_label domain id"));
    Cfi_label (Int32.of_int (b0 lor (b1 lsl 8)))
  end
  else if opcode = opcode_nop then Nop
  else if opcode = opcode_mov_imm then
    let r = get_reg cur in
    Mov_imm (r, get_esc64 cur)
  else if opcode = opcode_mov_reg then
    let d = get_reg cur in
    Mov_reg (d, get_reg cur)
  else if opcode = opcode_load then
    let dst = get_reg cur in
    let size = get_size cur in
    Load { dst; src = get_mem cur; size }
  else if opcode = opcode_store then
    let src = get_reg cur in
    let size = get_size cur in
    Store { dst = get_mem cur; src; size }
  else if opcode = opcode_push then Push (get_reg cur)
  else if opcode = opcode_pop then Pop (get_reg cur)
  else if opcode = opcode_lea then
    let r = get_reg cur in
    Lea (r, get_mem cur)
  else if opcode = opcode_alu_rr then
    let o = byte cur in
    match alu_of_code o with
    | None -> raise (Decode_error (Bad_operand "alu op"))
    | Some o ->
        let d = get_reg cur in
        Alu (o, d, O_reg (get_reg cur))
  else if opcode = opcode_alu_ri then
    let o = byte cur in
    match alu_of_code o with
    | None -> raise (Decode_error (Bad_operand "alu op"))
    | Some o ->
        let d = get_reg cur in
        Alu (o, d, O_imm (get_esc64 cur))
  else if opcode = opcode_cmp_rr then
    let a = get_reg cur in
    Cmp (a, O_reg (get_reg cur))
  else if opcode = opcode_cmp_ri then
    let a = get_reg cur in
    Cmp (a, O_imm (get_esc64 cur))
  else if opcode = opcode_jmp then Jmp (get_esc32 cur)
  else if opcode = opcode_jcc then
    let c = byte cur in
    match cond_of_code c with
    | None -> raise (Decode_error (Bad_operand "condition"))
    | Some c -> Jcc (c, get_esc32 cur)
  else if opcode = opcode_call then Call (get_esc32 cur)
  else if opcode = opcode_jmp_reg then Jmp_reg (get_reg cur)
  else if opcode = opcode_call_reg then Call_reg (get_reg cur)
  else if opcode = opcode_jmp_mem then Jmp_mem (get_mem cur)
  else if opcode = opcode_call_mem then Call_mem (get_mem cur)
  else if opcode = opcode_ret then Ret
  else if opcode = opcode_ret_imm then Ret_imm (get_esc32 cur)
  else if opcode = opcode_syscall_gate then Syscall_gate
  else if opcode = opcode_hlt then Hlt
  else if opcode = opcode_bndcl then
    let b = get_bnd cur in
    Bndcl (b, get_ea cur)
  else if opcode = opcode_bndcu then
    let b = get_bnd cur in
    Bndcu (b, get_ea cur)
  else if opcode = opcode_bndmk then
    let b = get_bnd cur in
    Bndmk (b, get_mem cur)
  else if opcode = opcode_bndmov then
    let d = get_bnd cur in
    Bndmov (d, get_bnd cur)
  else if opcode = opcode_eexit then Eexit
  else if opcode = opcode_emodpe then Emodpe
  else if opcode = opcode_eaccept then Eaccept
  else if opcode = opcode_xrstor then Xrstor
  else if opcode = opcode_wrfsbase then Wrfsbase (get_reg cur)
  else if opcode = opcode_wrgsbase then Wrgsbase (get_reg cur)
  else if opcode = opcode_vscatter then
    let base = get_reg cur in
    let index = get_reg cur in
    let scale = byte cur in
    if scale <> 1 && scale <> 2 && scale <> 4 && scale <> 8 then
      raise (Decode_error (Bad_operand "scale"));
    Vscatter { base; index; scale; src = get_reg cur }
  else raise (Decode_error (Bad_opcode opcode))

let decode data ~pos ~limit =
  if pos < 0 || pos >= limit || limit > Bytes.length data then Error Truncated
  else
    let cur = { data; limit; pos } in
    match decode_cursor cur with
    | i -> Ok (i, cur.pos - pos)
    | exception Decode_error e -> Error e

(* Encode a whole program and return (bytes, offsets of each instruction). *)
let encode_program insns =
  let buf = Buffer.create 1024 in
  let offsets =
    List.map
      (fun i ->
        let off = Buffer.length buf in
        encode_into buf i;
        off)
      insns
  in
  (Buffer.to_bytes buf, offsets)
