lib/machine/mem.ml: Array Bytes Char Fault Printf
