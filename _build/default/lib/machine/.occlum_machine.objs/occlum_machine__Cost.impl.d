lib/machine/cost.ml:
