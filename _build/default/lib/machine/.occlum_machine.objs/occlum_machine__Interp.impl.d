lib/machine/interp.ml: Codec Cost Cpu Fault Insn Int64 Mem Occlum_isa Reg
