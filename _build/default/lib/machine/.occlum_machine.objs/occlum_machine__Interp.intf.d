lib/machine/interp.mli: Cpu Fault Mem
