lib/machine/cpu.ml: Array Occlum_isa
