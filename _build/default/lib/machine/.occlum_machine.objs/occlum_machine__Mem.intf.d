lib/machine/mem.mli: Bytes Fault
