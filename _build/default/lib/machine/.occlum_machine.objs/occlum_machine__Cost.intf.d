lib/machine/cost.mli:
