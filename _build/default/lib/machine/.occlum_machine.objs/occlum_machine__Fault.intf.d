lib/machine/fault.mli:
