lib/machine/cpu.mli: Occlum_isa
