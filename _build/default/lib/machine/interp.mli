(** The fetch/decode/execute loop. Runs untrusted SIP code; the LibOS is
    OCaml and interacts through {!Cpu} and {!Mem}. *)

type stop =
  | Stop_syscall  (** reached a LibOS trampoline's syscall gate *)
  | Stop_fault of Fault.t  (** AEX: captured by the LibOS *)
  | Stop_quantum  (** fuel exhausted; the SIP is preempted *)

val stop_to_string : stop -> string

val step : Mem.t -> Cpu.t -> stop option
(** Execute exactly one instruction; [Some stop] when control leaves the
    interpreter. *)

val run : Mem.t -> Cpu.t -> fuel:int -> stop
(** Run until a stop condition or [fuel] executed instructions. *)
