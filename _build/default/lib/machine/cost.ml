(* Cycle cost model. One place holds every constant so the SPEC-style
   overhead benchmarks (Fig. 7) and the ablations are driven by a single
   calibration. Values are loosely shaped on a Kaby Lake core: ALU ops
   are cheap, memory traffic costs more, bound checks are one cheap uop
   each (the reason MPX-based SFI is viable at ~36% overhead). *)

let alu = 1
let mov = 1
let load = 4 (* L1 hit latency-ish *)
let store = 2
let push = 3
let pop = 4
let lea = 1
let branch = 2
let branch_indirect = 6
let call = 4
let ret = 5
let bound_check = 2 (* check itself plus the extra address generation *)
let cfi_label = 1 (* an 8-byte nop still occupies a slot *)
let nop = 1
let syscall_gate = 60 (* enter/leave the LibOS: stack + TLS switch, sanity checks *)
let div = 20
