(* Flat, paged, permission-checked memory: the single address space of an
   enclave. MMDSFI guard regions are simply pages left unmapped, so any
   access to them raises a page fault — exactly the mechanism §4.1 relies
   on. *)

let page_size = 4096

type perm = { r : bool; w : bool; x : bool }

let perm_rw = { r = true; w = true; x = false }
let perm_rx = { r = true; w = false; x = true }
let perm_rwx = { r = true; w = true; x = true }
let perm_ro = { r = true; w = false; x = false }

let perm_to_string p =
  Printf.sprintf "%c%c%c" (if p.r then 'r' else '-') (if p.w then 'w' else '-')
    (if p.x then 'x' else '-')

type t = {
  data : Bytes.t;
  pages : perm option array; (* None = unmapped *)
  size : int;
}

let create ~size =
  if size <= 0 || size mod page_size <> 0 then
    invalid_arg "Mem.create: size must be a positive multiple of the page size";
  { data = Bytes.make size '\x00'; pages = Array.make (size / page_size) None; size }

let size t = t.size
let page_count t = Array.length t.pages

let check_range t addr len =
  if addr < 0 || len < 0 || addr + len > t.size then
    invalid_arg (Printf.sprintf "Mem: range [0x%x, +%d) outside address space" addr len)

let map t ~addr ~len ~perm =
  check_range t addr len;
  if addr mod page_size <> 0 || len mod page_size <> 0 then
    invalid_arg "Mem.map: unaligned";
  for p = addr / page_size to ((addr + len) / page_size) - 1 do
    t.pages.(p) <- Some perm
  done

let unmap t ~addr ~len =
  check_range t addr len;
  if addr mod page_size <> 0 || len mod page_size <> 0 then
    invalid_arg "Mem.unmap: unaligned";
  for p = addr / page_size to ((addr + len) / page_size) - 1 do
    t.pages.(p) <- None
  done

let perm_at t addr =
  if addr < 0 || addr >= t.size then None else t.pages.(addr / page_size)

(* Fault-checking access used by the interpreter. The whole byte span
   must be readable/writable; an access that starts in a mapped page and
   spills into a guard page faults, which is what makes base-address-only
   mem_guards sound. *)
let check_access t addr len (access : Fault.access) =
  if addr < 0 || addr + len > t.size then
    raise (Fault.Fault (Page_fault { addr; access }));
  for p = addr / page_size to (addr + len - 1) / page_size do
    match t.pages.(p) with
    | None -> raise (Fault.Fault (Page_fault { addr; access }))
    | Some perm ->
        let allowed =
          match access with
          | Read -> perm.r
          | Write -> perm.w
          | Exec -> perm.x
        in
        if not allowed then raise (Fault.Fault (Page_fault { addr; access }))
  done

let read_u8 t addr =
  check_access t addr 1 Read;
  Char.code (Bytes.get t.data addr)

let write_u8 t addr v =
  check_access t addr 1 Write;
  Bytes.set t.data addr (Char.chr (v land 0xFF))

let read_u64 t addr =
  check_access t addr 8 Read;
  Bytes.get_int64_le t.data addr

let write_u64 t addr v =
  check_access t addr 8 Write;
  Bytes.set_int64_le t.data addr v

(* Privileged accessors for the LibOS / loader: no permission checks,
   still bounds-checked. The LibOS is trusted (§3.1). *)
let read_bytes_priv t ~addr ~len =
  check_range t addr len;
  Bytes.sub t.data addr len

let write_bytes_priv t ~addr bytes =
  check_range t addr (Bytes.length bytes);
  Bytes.blit bytes 0 t.data addr (Bytes.length bytes)

let read_u64_priv t addr =
  check_range t addr 8;
  Bytes.get_int64_le t.data addr

let write_u64_priv t addr v =
  check_range t addr 8;
  Bytes.set_int64_le t.data addr v

let fill_priv t ~addr ~len c =
  check_range t addr len;
  Bytes.fill t.data addr len c

let raw t = t.data
