(* RIPE-style security benchmark (§9.3).

   Each attack is a well-formed program (it passes the verifier — the
   threat model is a *benign-looking but vulnerable/compromised* SIP)
   that performs a buffer overflow through a real machine-level store and
   then lets the corrupted value steer control flow:

   technique:
   - [`Ret_overwrite]   the victim function overwrites its own saved
                        return address on the stack (classic RIPE);
   - [`Funcptr]         the attack corrupts a function pointer that is
                        then called.

   target:
   - [`Shellcode_labeled]    injected code in the data region, prefixed
                             with a forged cfi_label (the attacker knows
                             the domain id — worst case);
   - [`Shellcode_unlabeled]  ditto without the label;
   - [`Rop_gadget]           an instruction boundary inside existing code
                             that is not a cfi_label;
   - [`Return_to_libc]       the entry of a legitimate runtime function
                             (exit), with a forged argument planted.

   Expected outcome, mirroring the paper: Occlum prevents every
   code-injection and ROP attack (cfi_guard #BR or data-page #X fault);
   return-to-libc "succeeds" (libc entries are legitimate cfi_labels) but
   stays inside the SIP's own domain. The unprotected baseline (bare
   build, RWX data, real ret) falls to all of them.

   Magic exit codes identify a successful attack:
   1337 shellcode ran, 4242 gadget ran, 41 return-to-libc ran. *)

open Occlum_toolchain.Ast
module Native_run = Occlum_baseline.Native_run

type technique = Ret_overwrite | Funcptr
type target = Shellcode_labeled | Shellcode_unlabeled | Rop_gadget | Return_to_libc

type attack = { technique : technique; target : target; name : string }

let corpus =
  List.concat_map
    (fun (technique, tn) ->
      List.map
        (fun (target, gn) -> { technique; target; name = tn ^ "/" ^ gn })
        [
          (Shellcode_labeled, "shellcode-labeled");
          (Shellcode_unlabeled, "shellcode");
          (Rop_gadget, "rop-gadget");
          (Return_to_libc, "return-to-libc");
        ])
    [ (Ret_overwrite, "ret-overwrite"); (Funcptr, "funcptr") ]

let shellcode_exit_code = 1337
let gadget_exit_code = 4242
let libc_exit_code = 41
let gadget_arg = gadget_exit_code

(* Shellcode: exit(1337) as raw OASM bytes, optionally prefixed by a
   forged cfi_label for [domain_id]. The syscall uses an inline gate:
   the bare runner services it; under Occlum a stray gate would be
   killed — but under Occlum the shellcode never runs at all. *)
let shellcode ~labeled ~domain_id =
  let open Occlum_isa in
  let insns =
    (if labeled then [ Insn.Cfi_label (Int32.of_int domain_id) ] else [])
    @ [
        Insn.Mov_imm (Reg.of_int Occlum_abi.Abi.Regs.sys_arg0,
                      Int64.of_int shellcode_exit_code);
        Insn.Mov_imm (Reg.of_int Occlum_abi.Abi.Regs.sys_nr,
                      Int64.of_int Occlum_abi.Abi.Sys.exit);
        Insn.Syscall_gate;
      ]
  in
  String.concat "" (List.map Codec.encode insns)

let hex_encode s =
  String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
                      (List.init (String.length s) (String.get s)))

(* The attack program. argv[0] = hex payload bytes (shellcode) or ""
   argv[1] = decimal gadget delta from gadget_exit's entry (for
   Rop_gadget), "0" otherwise.

   Functions:
   - gadget_exit: its body (past entry+prologue) is the ROP gadget;
   - decode_hex: writes argv[0]'s bytes into the payload buffer;
   - victim_ret: overflows its own return slot (+ the word above, used
     as the planted argument for return-to-libc);
   - victim_ptr: corrupts a "function pointer" then calls it. *)
let attack_program (a : attack) =
  let target_expr =
    match a.target with
    | Shellcode_labeled | Shellcode_unlabeled -> v "payload_addr"
    | Rop_gadget -> Binop (Add, Func_addr "gadget_exit", v "delta")
    | Return_to_libc -> Func_addr "exit"
  in
  let victim_ret =
    (* frame layout at body entry (stack grows down):
         sp+0   dummy        (the "buffer" being overflowed)
         sp+8   saved return address            <- dummy+8
         sp+16  the argument slot (param t)
         sp+24  caller frame word
         sp+32  lands where a function entered via the corrupted return
                will look for its first argument  <- dummy+32 *)
    func "victim_ret" [ "t" ]
      [
        Let ("dummy", i 0);
        Expr (v "dummy");
        (* the overflow: stores walking past the buffer. dummy+8 is the
           saved return address; dummy+24 is the first stack word the
           hijacked return will expose (the ROP gadget pops it as its
           argument); dummy+32 is where a function entered through the
           corrupted return looks for its first parameter. *)
        Store (Frame_addr "dummy" +: i 8, v "t");
        Store (Frame_addr "dummy" +: i 24, i gadget_arg);
        Store (Frame_addr "dummy" +: i 32, i libc_exit_code);
        Return (i 0);
      ]
  in
  let victim_ptr =
    func "victim_ptr" [ "t" ]
      [
        (* handler starts as a benign function; the "overflow" replaces it *)
        Let ("handler", Func_addr "benign");
        Store (Frame_addr "handler", v "t");
        Expr (Call_ptr (v "handler", [ i libc_exit_code ]));
        Return (i 0);
      ]
  in
  Occlum_toolchain.Runtime.program
    ~globals:[ ("payload", 256) ]
    [
      func "benign" [] [ Return (i 7) ];
      (* Its tail is the ROP gadget: "... pop r2; mov r1, #exit; gate"
         consumes the attacker-planted stack word as the exit code. *)
      func "gadget_exit" []
        [
          Expr (Syscall (Occlum_abi.Abi.Sys.exit, [ i 99 ]));
          Return (i 0);
        ];
      func "decode_hex" [ "src"; "dst" ]
        [
          Let ("k", i 0);
          Let ("c", Load1 (v "src"));
          While
            ( v "c" <>: i 0,
              [
                Let ("hi", v "c");
                If (v "hi" >=: i 97, [ Assign ("hi", v "hi" -: i 87) ],
                    [ Assign ("hi", v "hi" -: i 48) ]);
                Let ("lo", Load1 (v "src" +: i 1));
                If (v "lo" >=: i 97, [ Assign ("lo", v "lo" -: i 87) ],
                    [ Assign ("lo", v "lo" -: i 48) ]);
                Store1 (v "dst" +: v "k", (v "hi" <<: i 4) |: v "lo");
                Assign ("src", v "src" +: i 2);
                Assign ("k", v "k" +: i 1);
                Assign ("c", Load1 (v "src"));
              ] );
          Return (v "k");
        ];
      victim_ret;
      victim_ptr;
      func "main" []
        [
          Expr (Call ("decode_hex", [ Call ("argv", [ i 0 ]); Global_addr "payload" ]));
          Let ("payload_addr", Global_addr "payload");
          Let ("delta", Call ("atoi", [ Call ("argv", [ i 1 ]) ]));
          Expr (v "payload_addr");
          Expr (v "delta");
          (match a.technique with
          | Ret_overwrite -> Expr (Call ("victim_ret", [ target_expr ]))
          | Funcptr -> Expr (Call ("victim_ptr", [ target_expr ])));
          (* control only reaches here if the attack fizzled benignly *)
          Return (i 0);
        ];
    ]

(* Locate the ROP gadget: the first [pop] inside gadget_exit. Entering
   there pops an attacker-planted stack word into the syscall-argument
   register and falls into "mov r1, #exit; gate" — a classic
   pop-reg; syscall gadget. Never a cfi_label, so MMDSFI rejects it. *)
let gadget_delta (oelf : Occlum_oelf.Oelf.t) =
  match Occlum_oelf.Oelf.find_symbol oelf "f_gadget_exit" with
  | None -> invalid_arg "gadget_delta: no gadget_exit symbol"
  | Some off ->
      let rec walk pos =
        if pos - off > 512 then invalid_arg "gadget_delta: no pop found"
        else
          match
            Occlum_isa.Codec.decode oelf.code ~pos ~limit:(Bytes.length oelf.code)
          with
          | Ok (Occlum_isa.Insn.Pop _, _) -> pos - off
          | Ok (_, len) -> walk (pos + len)
          | Error _ -> invalid_arg "gadget_delta: cannot decode gadget_exit"
      in
      walk off

type outcome = Attack_succeeded | Prevented of string

let outcome_to_string = function
  | Attack_succeeded -> "SUCCEEDED"
  | Prevented reason -> "prevented (" ^ reason ^ ")"

(* --- harness ---------------------------------------------------------- *)

let occlum_domain_id = 1 (* the first spawned SIP lands in slot 1 *)

let payload_hex (a : attack) ~domain_id =
  match a.target with
  | Shellcode_labeled -> hex_encode (shellcode ~labeled:true ~domain_id)
  | Shellcode_unlabeled -> hex_encode (shellcode ~labeled:false ~domain_id)
  | Rop_gadget | Return_to_libc -> ""

(* Run one attack as a SIP under the Occlum LibOS. *)
let run_on_occlum (a : attack) : outcome =
  let prog = attack_program a in
  let oelf = Occlum_toolchain.Compile.compile_exn
               ~config:Occlum_toolchain.Codegen.sfi prog in
  let signed =
    match Occlum_verifier.Verify.verify_and_sign oelf with
    | Ok s -> s
    | Error rs ->
        invalid_arg
          ("ripe: attack binary unexpectedly rejected: "
          ^ Occlum_verifier.Verify.rejection_to_string (List.hd rs))
  in
  let os = Occlum_libos.Os.boot () in
  let delta = string_of_int (gadget_delta signed) in
  let pid =
    Occlum_libos.Os.spawn_initial os signed
      ~args:[ payload_hex a ~domain_id:occlum_domain_id; delta ]
  in
  ignore (Occlum_libos.Os.run ~max_steps:500_000 os);
  match Occlum_libos.Os.find_proc os pid with
  | Some { state = `Zombie; exit_code; _ } ->
      if exit_code = shellcode_exit_code || exit_code = gadget_exit_code
         || exit_code = libc_exit_code
      then Attack_succeeded
      else (
        match os.Occlum_libos.Os.faults with
        | (_, f) :: _ -> Prevented (Occlum_machine.Fault.to_string f)
        | [] -> Prevented (Printf.sprintf "exit %d" exit_code))
  | _ -> Prevented "no exit"

(* Run the same attack as an unprotected native process (no SFI, RWX
   data, hardware ret) — the RIPE baseline. *)
let run_on_baseline (a : attack) : outcome =
  let prog = attack_program a in
  let oelf = Occlum_toolchain.Compile.compile_exn
               ~config:Occlum_toolchain.Codegen.bare prog in
  let delta = string_of_int (gadget_delta oelf) in
  match
    Native_run.run oelf ~nx:false
      ~args:[ payload_hex a ~domain_id:0; delta ]
  with
  | r ->
      let code = Int64.to_int r.Native_run.exit_code in
      if code = shellcode_exit_code || code = gadget_exit_code
         || code = libc_exit_code
         (* a mid-function gadget that runs to an exit at all is a
            successful control-flow hijack even if the planted argument
            was not on top of the stack (the funcptr variant) *)
         || (a.target = Rop_gadget && code <> 0)
      then Attack_succeeded
      else Prevented (Printf.sprintf "exit %Ld" r.exit_code)
  | exception Native_run.Runtime_fault f ->
      Prevented (Occlum_machine.Fault.to_string f)
