lib/workloads/spec.ml: Occlum_toolchain
