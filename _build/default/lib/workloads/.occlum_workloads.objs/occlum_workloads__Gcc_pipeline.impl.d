lib/workloads/gcc_pipeline.ml: Buffer Occlum_abi Occlum_toolchain Printf
