lib/workloads/httpd.ml: Occlum_abi Occlum_toolchain
