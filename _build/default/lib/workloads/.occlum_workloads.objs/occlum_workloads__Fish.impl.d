lib/workloads/fish.ml: Occlum_abi Occlum_toolchain
