lib/workloads/httpd.mli: Occlum_toolchain
