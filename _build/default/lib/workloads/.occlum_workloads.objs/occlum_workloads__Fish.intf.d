lib/workloads/fish.mli: Occlum_toolchain
