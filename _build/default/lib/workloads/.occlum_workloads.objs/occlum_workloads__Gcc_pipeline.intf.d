lib/workloads/gcc_pipeline.mli: Occlum_toolchain
