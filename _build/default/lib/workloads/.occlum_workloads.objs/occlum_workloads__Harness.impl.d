lib/workloads/harness.ml: Buffer Fish Gcc_pipeline Hashtbl Httpd Int64 List Occlum_abi Occlum_libos Occlum_toolchain Occlum_verifier Printf String Unix
