lib/workloads/ripe.mli: Occlum_oelf Occlum_toolchain
