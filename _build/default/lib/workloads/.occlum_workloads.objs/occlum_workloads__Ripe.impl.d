lib/workloads/ripe.ml: Bytes Char Codec Insn Int32 Int64 List Occlum_abi Occlum_baseline Occlum_isa Occlum_libos Occlum_machine Occlum_oelf Occlum_toolchain Occlum_verifier Printf Reg String
