lib/workloads/spec.mli: Occlum_toolchain
