lib/workloads/harness.mli: Occlum_libos Occlum_oelf Occlum_toolchain
