(** RIPE-style security benchmark (§9.3): buffer-overflow attacks carried
    out by real machine-level stores inside verified programs, across two
    techniques and four payload targets. Expected outcomes mirror the
    paper: Occlum prevents all code-injection and ROP attacks;
    return-to-libc succeeds without crossing SIP isolation; the
    unprotected baseline falls to everything. *)

type technique =
  | Ret_overwrite  (** smash the saved return address *)
  | Funcptr        (** corrupt a function pointer, then call it *)

type target =
  | Shellcode_labeled    (** injected code prefixed with a forged cfi_label *)
  | Shellcode_unlabeled
  | Rop_gadget           (** a non-label instruction boundary in real code *)
  | Return_to_libc       (** a legitimate runtime function entry *)

type attack = { technique : technique; target : target; name : string }

val corpus : attack list
(** All 8 technique x target combinations. *)

val shellcode_exit_code : int
val gadget_exit_code : int
val libc_exit_code : int

val shellcode : labeled:bool -> domain_id:int -> string
(** exit(1337) as raw OASM bytes, optionally label-prefixed. *)

val attack_program : attack -> Occlum_toolchain.Ast.program
(** The vulnerable program (it passes the verifier: the threat model is
    a compromised-but-verified SIP). *)

val gadget_delta : Occlum_oelf.Oelf.t -> int
(** Offset of the pop-reg; exit gadget inside [gadget_exit]. *)

type outcome = Attack_succeeded | Prevented of string

val outcome_to_string : outcome -> string

val run_on_occlum : attack -> outcome
val run_on_baseline : attack -> outcome
(** The same attack on an unprotected native process (RWX data, real
    ret, no SFI). *)
