(** The GCC benchmark (Fig. 5b): a compiler driver running its phases as
    separate processes — cc spawns cpp → cc1 → as → ld — through
    temporary files on the (encrypted) file system, with cc1 burning CPU
    proportional to input size. *)

val cpp_prog : Occlum_toolchain.Ast.program
val cc1_prog : Occlum_toolchain.Ast.program
val as_prog : Occlum_toolchain.Ast.program
val ld_prog : Occlum_toolchain.Ast.program

val cc_prog : Occlum_toolchain.Ast.program
(** The driver: argv[0] = source path; output lands at /tmp/a.out. *)

val binaries : (string * Occlum_toolchain.Ast.program) list

val source_file : lines:int -> string
(** A synthetic "C" source of the given line count. *)
