(** Twelve CPU-bound Occlang kernels shaped after the SPECint2006 suite
    of Figure 7 — string hashing, MTF compression, graph walks, min-cost
    relaxation, board evaluation, DP matrices, game-tree search, bit
    manipulation, SAD motion search, an event-queue simulation, grid
    pathfinding, and tree folding. Each prints a checksum and makes no
    system calls besides the final write+exit, so instrumented-vs-plain
    cycle counts isolate MMDSFI's CPU overhead. *)

val all : scale:int -> (string * Occlum_toolchain.Ast.program) list
(** The kernels, with iteration counts multiplied by [scale]. *)
