(* The fish-shell benchmark (Fig. 5a): a UnixBench-style script that
   pushes data through a pipeline of separate utility processes —
   generator | tr | filter | wc — repeatedly. Every stage is its own
   SIP, so the workload is dominated by process creation and pipe IPC,
   exactly the regime where SIPs beat EIPs by orders of magnitude.

   The shell wires children's stdio by dup2-ing its own fd 0/1 before
   each spawn (posix_spawn file-actions style) and restoring them after. *)

open Occlum_toolchain.Ast
module Sys = Occlum_abi.Abi.Sys

(* gen: write [lines] lines of 32 chars to stdout *)
let gen_prog =
  Occlum_toolchain.Runtime.program
    ~globals:[ ("line", 64) ]
    [
      func "main" []
        [
          Expr (Call ("close_extra", []));
          Let ("lines", Call ("atoi", [ Call ("argv", [ i 0 ]) ]));
          Let ("k", i 0);
          While
            ( v "k" <: i 32,
              [
                Store1 (Global_addr "line" +: v "k", i 97 +: (v "k" %: i 26));
                Assign ("k", v "k" +: i 1);
              ] );
          Store1 (Global_addr "line" +: i 32, i 10);
          Let ("n", i 0);
          While
            ( v "n" <: v "lines",
              [
                (* vary the first byte per line *)
                Store1 (Global_addr "line", i 97 +: (v "n" %: i 26));
                Expr (Call ("write", [ i 1; Global_addr "line"; i 33 ]));
                Assign ("n", v "n" +: i 1);
              ] );
          Return (i 0);
        ];
    ]

(* tr: uppercase a-z while copying stdin to stdout *)
let tr_prog =
  Occlum_toolchain.Runtime.program
    ~globals:[ ("buf", 4096) ]
    [
      func ~reg_vars:[ "p" ] "main" []
        [
          Expr (Call ("close_extra", []));
          Let ("go", i 1);
          While
            ( v "go",
              [
                Let ("n", Call ("read", [ i 0; Global_addr "buf"; i 4096 ]));
                If
                  ( v "n" <=: i 0,
                    [ Assign ("go", i 0) ],
                    [
                      Let ("k", i 0);
                      Assign ("p", Global_addr "buf");
                      While
                        ( v "k" <: v "n",
                          [
                            Let ("c", Load1 (v "p"));
                            If
                              ( Binop (And, v "c" >=: i 97, v "c" <=: i 122),
                                [ Store1 (v "p", v "c" -: i 32) ],
                                [] );
                            Assign ("p", v "p" +: i 1);
                            Assign ("k", v "k" +: i 1);
                          ] );
                      Expr (Call ("write", [ i 1; Global_addr "buf"; v "n" ]));
                    ] );
              ] );
          Return (i 0);
        ];
    ]

(* grep-ish filter: copy only lines whose first byte matches argv[0] *)
let filter_prog =
  Occlum_toolchain.Runtime.program
    ~globals:[ ("buf", 4096) ]
    [
      func "main" []
        [
          Expr (Call ("close_extra", []));
          Let ("want", Load1 (Call ("argv", [ i 0 ])));
          Let ("go", i 1);
          While
            ( v "go",
              [
                Let ("n", Call ("read", [ i 0; Global_addr "buf"; i 4096 ]));
                If
                  ( v "n" <=: i 0,
                    [ Assign ("go", i 0) ],
                    [
                      (* line-structured input: 33-byte records *)
                      Let ("off", i 0);
                      While
                        ( v "off" +: i 33 <=: v "n",
                          [
                            If
                              ( Load1 (Global_addr "buf" +: v "off") =: v "want",
                                [
                                  Expr
                                    (Call ("write",
                                           [ i 1; Global_addr "buf" +: v "off"; i 33 ]));
                                ],
                                [] );
                            Assign ("off", v "off" +: i 33);
                          ] );
                    ] );
              ] );
          Return (i 0);
        ];
    ]

(* wc: count bytes on stdin, print the count *)
let wc_prog =
  Occlum_toolchain.Runtime.program
    ~globals:[ ("buf", 4096) ]
    [
      func "main" []
        [
          Expr (Call ("close_extra", []));
          Let ("total", i 0);
          Let ("go", i 1);
          While
            ( v "go",
              [
                Let ("n", Call ("read", [ i 0; Global_addr "buf"; i 4096 ]));
                If (v "n" <=: i 0, [ Assign ("go", i 0) ],
                    [ Assign ("total", v "total" +: v "n") ]);
              ] );
          Expr (Call ("print_int", [ v "total" ]));
          Expr (Call ("puts", [ Str "\n"; i 1 ]));
          Return (i 0);
        ];
    ]

(* The shell: [repeats] rounds of gen N | tr | filter A | wc. argv[0] =
   repeats, argv[1] = lines per round. *)
let shell_prog =
  let dup2 a b = Expr (Syscall (Sys.dup2, [ a; b ])) in
  let close e = Expr (Call ("close", [ e ])) in
  let pipe_at addr = Expr (Syscall (Sys.pipe, [ addr ])) in
  Occlum_toolchain.Runtime.program
    ~globals:[ ("fdbuf", 64); ("lines_str", 16) ]
    [
      func "main" []
        [
          Let ("repeats", Call ("atoi", [ Call ("argv", [ i 0 ]) ]));
          Let ("lines", Call ("atoi", [ Call ("argv", [ i 1 ]) ]));
          (* keep copies of the console stdio *)
          Expr (Syscall (Sys.dup2, [ i 1; i 9 ])); (* dup2(1, 9): saved stdout *)
          Let ("round", i 0);
          While
            ( v "round" <: v "repeats",
              [
                (* three pipes: p0 gen->tr, p1 tr->filter, p2 filter->wc *)
                pipe_at (Global_addr "fdbuf");
                pipe_at (Global_addr "fdbuf" +: i 16);
                pipe_at (Global_addr "fdbuf" +: i 32);
                Let ("p0r", Load (Global_addr "fdbuf"));
                Let ("p0w", Load (Global_addr "fdbuf" +: i 8));
                Let ("p1r", Load (Global_addr "fdbuf" +: i 16));
                Let ("p1w", Load (Global_addr "fdbuf" +: i 24));
                Let ("p2r", Load (Global_addr "fdbuf" +: i 32));
                Let ("p2w", Load (Global_addr "fdbuf" +: i 40));
                (* gen: stdout -> p0w *)
                dup2 (v "p0w") (i 1);
                Let ("g",
                     Call ("spawn1",
                           [ Str "/bin/gen"; i 8;
                             Call ("itoa", [ v "lines" ]);
                             (Global_addr "_rt_itoa_buf" +: i 31)
                             -: Call ("itoa", [ v "lines" ]) ]));
                (* tr: stdin p0r, stdout p1w *)
                dup2 (v "p0r") (i 0);
                dup2 (v "p1w") (i 1);
                Let ("t", Call ("spawn0", [ Str "/bin/tr"; i 7 ]));
                (* filter: stdin p1r, stdout p2w; keep lines starting 'A' *)
                dup2 (v "p1r") (i 0);
                dup2 (v "p2w") (i 1);
                Let ("f", Call ("spawn1", [ Str "/bin/filter"; i 11; Str "A"; i 1 ]));
                (* wc: stdin p2r, stdout console *)
                dup2 (v "p2r") (i 0);
                dup2 (i 9) (i 1);
                Let ("w", Call ("spawn0", [ Str "/bin/wc"; i 7 ]));
                (* the shell closes every pipe end it still holds *)
                close (v "p0r"); close (v "p0w");
                close (v "p1r"); close (v "p1w");
                close (v "p2r"); close (v "p2w");
                close (i 0);
                dup2 (i 9) (i 1);
                Expr (Call ("waitpid", [ v "g"; i 0 ]));
                Expr (Call ("waitpid", [ v "t"; i 0 ]));
                Expr (Call ("waitpid", [ v "f"; i 0 ]));
                Expr (Call ("waitpid", [ v "w"; i 0 ]));
                Assign ("round", v "round" +: i 1);
              ] );
          Return (i 0);
        ];
    ]

let binaries =
  [ ("/bin/gen", gen_prog); ("/bin/tr", tr_prog); ("/bin/filter", filter_prog);
    ("/bin/wc", wc_prog); ("/bin/fish", shell_prog) ]
