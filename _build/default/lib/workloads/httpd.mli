(** The lighttpd benchmark (Fig. 5c): a pre-forking web server — master +
    workers sharing the inherited listening socket — plus the artifact's
    multithreaded mode (one SIP whose request loop runs in LibOS threads
    using poll + accept). Responses carry a 10 KiB page; the harness
    plays ApacheBench from outside the enclave. *)

val port : int
val page_size : int

val worker_prog : Occlum_toolchain.Ast.program
(** Serves argv[0] requests from the inherited listener (fd 3). *)

val master_prog : Occlum_toolchain.Ast.program
(** argv: workers, requests-per-worker. *)

val mt_prog : Occlum_toolchain.Ast.program
(** The multithreaded server. argv: threads, requests-per-thread. *)

val binaries : (string * Occlum_toolchain.Ast.program) list
val request : string
