(* The GCC benchmark (Fig. 5b): a compiler driver that, like gcc, runs
   its phases as separate processes — cc (driver) spawns cpp -> cc1 ->
   as -> ld, communicating through temporary files on the (encrypted)
   file system. cc1 burns CPU proportional to input size, so the three
   input sizes (5 LoC "hello", 5K LoC "gzip", 50K LoC "ogg") reproduce
   the paper's sweep from spawn-dominated to compute-dominated. *)

open Occlum_toolchain.Ast
module F = Occlum_abi.Abi.Open_flags

(* Shared skeleton: open argv0 for read and argv1 for write, then stream
   chunks through [transform], a function name applied as
   transform(bufptr, n, state_ptr) -> bytes_to_write. *)
let stage_main transform =
  func "main" []
    [
      Expr (Call ("close_extra", []));
      Let ("inp", Call ("argv", [ i 0 ]));
      Let ("outp", Call ("argv", [ i 1 ]));
      Let ("ifd", Call ("open", [ v "inp"; Call ("strlen", [ v "inp" ]); i 0 ]));
      Let ("ofd",
           Call ("open",
                 [ v "outp"; Call ("strlen", [ v "outp" ]);
                   i (F.creat lor F.wronly lor F.trunc) ]));
      If (Binop (Or, v "ifd" <: i 0, v "ofd" <: i 0), [ Return (i 1) ], []);
      Let ("go", i 1);
      While
        ( v "go",
          [
            Let ("n", Call ("read", [ v "ifd"; Global_addr "buf"; i 4096 ]));
            If
              ( v "n" <=: i 0,
                [ Assign ("go", i 0) ],
                [
                  Let ("m", Call (transform, [ Global_addr "buf"; v "n" ]));
                  If (v "m" >: i 0,
                      [ Expr (Call ("write", [ v "ofd"; Global_addr "obuf"; v "m" ])) ],
                      []);
                ] );
          ] );
      Expr (Call ("close", [ v "ifd" ]));
      Expr (Call ("close", [ v "ofd" ]));
      Return (i 0);
    ]

let stage_globals = [ ("buf", 4096); ("obuf", 8192); ("state", 64) ]

(* cpp: drop lines that start with '#' (directives) or "//" (comments).
   state[0] = 0 copying-at-line-start, 1 mid-line copy, 2 skipping *)
let cpp_prog =
  Occlum_toolchain.Runtime.program ~globals:stage_globals
    [
      func ~reg_vars:[ "p"; "q" ] "transform" [ "ptr"; "n" ]
        [
          Let ("m", i 0);
          Let ("k", i 0);
          Assign ("p", v "ptr");
          Assign ("q", Global_addr "obuf");
          Let ("mode", Load (Global_addr "state"));
          While
            ( v "k" <: v "n",
              [
                Let ("c", Load1 (v "p"));
                If
                  ( v "mode" =: i 0,
                    [
                      If
                        ( v "c" =: i 35 (* '#' *),
                          [ Assign ("mode", i 2) ],
                          [
                            Store1 (v "q", v "c");
                            Assign ("q", v "q" +: i 1);
                            Assign ("m", v "m" +: i 1);
                            If (v "c" =: i 10, [], [ Assign ("mode", i 1) ]);
                          ] );
                    ],
                    [
                      If
                        ( v "mode" =: i 1,
                          [
                            Store1 (v "q", v "c");
                            Assign ("q", v "q" +: i 1);
                            Assign ("m", v "m" +: i 1);
                            If (v "c" =: i 10, [ Assign ("mode", i 0) ], []);
                          ],
                          [ If (v "c" =: i 10, [ Assign ("mode", i 0) ], []) ] );
                    ] );
                Assign ("p", v "p" +: i 1);
                Assign ("k", v "k" +: i 1);
              ] );
          Store (Global_addr "state", v "mode");
          Return (v "m");
        ];
      stage_main "transform";
    ]

(* cc1: the compiler proper — CPU-heavy mixing per input byte, emits one
   8-byte "instruction" per 8 input bytes *)
let cc1_prog =
  Occlum_toolchain.Runtime.program ~globals:stage_globals
    [
      func ~reg_vars:[ "p"; "q" ] "transform" [ "ptr"; "n" ]
        [
          Let ("m", i 0);
          Let ("k", i 0);
          Assign ("p", v "ptr");
          Assign ("q", Global_addr "obuf");
          Let ("acc", Load (Global_addr "state"));
          While
            ( v "k" <: v "n",
              [
                Let ("x", v "acc" +: Load1 (v "p"));
                (* optimization passes: a fixed mixing pipeline per byte *)
                Let ("it", i 0);
                While
                  ( v "it" <: i 12,
                    [
                      Assign ("x", v "x" ^: (v "x" <<: i 13));
                      Assign ("x", v "x" ^: (v "x" >>: i 7));
                      Assign ("x", (v "x" *: i 31) +: i 17);
                      Assign ("it", v "it" +: i 1);
                    ] );
                Assign ("acc", v "x");
                If
                  ( (v "k" &: i 7) =: i 7,
                    [
                      Store (v "q", v "acc");
                      Assign ("q", v "q" +: i 8);
                      Assign ("m", v "m" +: i 8);
                    ],
                    [] );
                Assign ("p", v "p" +: i 1);
                Assign ("k", v "k" +: i 1);
              ] );
          Store (Global_addr "state", v "acc");
          Return (v "m");
        ];
      stage_main "transform";
    ]

(* as: 1-to-1 byte encoding *)
let as_prog =
  Occlum_toolchain.Runtime.program ~globals:stage_globals
    [
      func ~reg_vars:[ "p"; "q" ] "transform" [ "ptr"; "n" ]
        [
          Let ("k", i 0);
          Assign ("p", v "ptr");
          Assign ("q", Global_addr "obuf");
          While
            ( v "k" <: v "n",
              [
                Store1 (v "q", Load1 (v "p") ^: i 90);
                Assign ("p", v "p" +: i 1);
                Assign ("q", v "q" +: i 1);
                Assign ("k", v "k" +: i 1);
              ] );
          Return (v "n");
        ];
      stage_main "transform";
    ]

(* ld: copy through and count; prints the final size like a link map *)
let ld_prog =
  Occlum_toolchain.Runtime.program ~globals:stage_globals
    [
      func "transform" [ "ptr"; "n" ]
        [
          Expr (Call ("memcpy", [ Global_addr "obuf"; v "ptr"; v "n" ]));
          Store (Global_addr "state", Load (Global_addr "state") +: v "n");
          Return (v "n");
        ];
      func "main" []
        [
          Expr (Call ("close_extra", []));
          Let ("inp", Call ("argv", [ i 0 ]));
          Let ("outp", Call ("argv", [ i 1 ]));
          Let ("ifd", Call ("open", [ v "inp"; Call ("strlen", [ v "inp" ]); i 0 ]));
          Let ("ofd",
               Call ("open",
                     [ v "outp"; Call ("strlen", [ v "outp" ]);
                       i (F.creat lor F.wronly lor F.trunc) ]));
          Expr (Call ("write", [ v "ofd"; Str "OEXE"; i 4 ]));
          Let ("go", i 1);
          While
            ( v "go",
              [
                Let ("n", Call ("read", [ v "ifd"; Global_addr "buf"; i 4096 ]));
                If
                  ( v "n" <=: i 0,
                    [ Assign ("go", i 0) ],
                    [
                      Let ("m", Call ("transform", [ Global_addr "buf"; v "n" ]));
                      Expr (Call ("write", [ v "ofd"; Global_addr "obuf"; v "m" ]));
                    ] );
              ] );
          Expr (Call ("print_int", [ Load (Global_addr "state") ]));
          Expr (Call ("puts", [ Str "\n"; i 1 ]));
          Expr (Call ("close", [ v "ifd" ]));
          Expr (Call ("close", [ v "ofd" ]));
          Return (i 0);
        ];
    ]

(* cc: the driver. argv0 = source path. Spawns each phase with
   "in\0out" argv blocks and waits for it, exactly like gcc -pipe off. *)
let cc_prog =
  let phase bin binlen inpath outpath =
    [
      (* pack argv block: in \0 out \0 *)
      Let ("blk", Global_addr "argvblk");
      Let ("l1", Call ("strlen", [ inpath ]));
      Expr (Call ("memcpy", [ v "blk"; inpath; v "l1" ]));
      Store1 (v "blk" +: v "l1", i 0);
      Let ("l2", Call ("strlen", [ outpath ]));
      Expr (Call ("memcpy", [ v "blk" +: v "l1" +: i 1; outpath; v "l2" ]));
      Store1 (v "blk" +: v "l1" +: i 1 +: v "l2", i 0);
      Let ("pid",
           Call ("spawn_argv",
                 [ bin; i binlen; v "blk"; v "l1" +: v "l2" +: i 2 ]));
      If (v "pid" <: i 0, [ Return (i 1) ], []);
      Expr (Call ("waitpid", [ v "pid"; i 0 ]));
    ]
  in
  Occlum_toolchain.Runtime.program
    ~globals:[ ("argvblk", 256) ]
    [
      func "main" []
        (phase (Str "/bin/cpp") 8 (Call ("argv", [ i 0 ])) (Str "/tmp/cc.i")
        @ phase (Str "/bin/cc1") 8 (Str "/tmp/cc.i") (Str "/tmp/cc.s")
        @ phase (Str "/bin/as") 7 (Str "/tmp/cc.s") (Str "/tmp/cc.o")
        @ phase (Str "/bin/ld") 7 (Str "/tmp/cc.o") (Str "/tmp/a.out")
        @ [ Return (i 0) ]);
    ]

let binaries =
  [ ("/bin/cpp", cpp_prog); ("/bin/cc1", cc1_prog); ("/bin/as", as_prog);
    ("/bin/ld", ld_prog); ("/bin/cc", cc_prog) ]

(* Synthetic "C" sources of a given line count. *)
let source_file ~lines =
  let b = Buffer.create (lines * 30) in
  Buffer.add_string b "#include <stdio.h>\n";
  for k = 1 to lines do
    if k mod 10 = 0 then Buffer.add_string b "// comment line\n"
    else Buffer.add_string b (Printf.sprintf "int v%d = f(%d) + %d;\n" k k (k * 7))
  done;
  Buffer.contents b
