(* Twelve CPU-bound Occlang kernels shaped after the SPECint2006 suite
   used in Figure 7. Each mirrors the computational character of its
   namesake (string processing, compression, DP matrices, graph
   relaxation, game-tree search, ...), prints a checksum, and makes no
   system calls besides the final write+exit — so instrumented-vs-plain
   cycle counts isolate MMDSFI's CPU overhead exactly as the paper's
   SPEC runs do. *)

open Occlum_toolchain.Ast

let checksum_epilogue =
  [
    Expr (Call ("print_int", [ v "check" ]));
    Expr (Call ("puts", [ Str "\n"; i 1 ]));
    Return (i 0);
  ]

(* xorshift-style PRNG usable from kernels *)
let prng_funcs =
  [
    func "rnd_next" [ "s" ]
      [
        Let ("x", v "s");
        Assign ("x", v "x" ^: (v "x" <<: i 13));
        Assign ("x", v "x" ^: (v "x" >>: i 7));
        Assign ("x", v "x" ^: (v "x" <<: i 17));
        Return (v "x");
      ];
  ]

(* 400.perlbench: string scanning/hashing over a text buffer *)
let perlbench n =
  Occlum_toolchain.Runtime.program
    ~globals:[ ("text", 4096); ("tbl", 2048) ]
    (prng_funcs
    @ [
        func ~reg_vars:[ "p" ] "fill_text" []
          [
            Let ("k", i 0);
            Assign ("p", Global_addr "text");
            While
              ( v "k" <: i 4096,
                [
                  Store1 (v "p", i 97 +: (v "k" %: i 26));
                  Assign ("p", v "p" +: i 1);
                  Assign ("k", v "k" +: i 1);
                ] );
            Return (i 0);
          ];
        func ~reg_vars:[ "p" ] "hash_pass" [ "seed" ]
          [
            Let ("h", v "seed");
            Let ("k", i 0);
            Assign ("p", Global_addr "text");
            While
              ( v "k" <: i 4096,
                [
                  Assign ("h", ((v "h" *: i 31) +: Load1 (v "p")) %: i 1000003);
                  Assign ("p", v "p" +: i 1);
                  Assign ("k", v "k" +: i 1);
                ] );
            Store (Global_addr "tbl" +: ((v "h" %: i 256) *: i 8), v "h");
            Return (v "h");
          ];
        func "main" []
          ([
             Expr (Call ("fill_text", []));
             Let ("check", i 0);
             Let ("r", i 0);
             While
               ( v "r" <: i n,
                 [
                   Assign ("check", Call ("hash_pass", [ v "check" +: v "r" ]));
                   Assign ("r", v "r" +: i 1);
                 ] );
           ]
          @ checksum_epilogue);
      ])

(* 401.bzip2: run-length encoding + move-to-front over a buffer *)
let bzip2 n =
  Occlum_toolchain.Runtime.program
    ~globals:[ ("src", 4096); ("dst", 8192); ("mtf", 256 * 8) ]
    [
      func ~reg_vars:[ "p" ] "prepare" []
        [
          Let ("k", i 0);
          Assign ("p", Global_addr "src");
          While
            ( v "k" <: i 4096,
              [
                Store1 (v "p", (v "k" *: v "k" >>: i 3) %: i 17);
                Assign ("p", v "p" +: i 1);
                Assign ("k", v "k" +: i 1);
              ] );
          Return (i 0);
        ];
      func "mtf_encode" []
        [
          (* init the move-to-front table *)
          Let ("k", i 0);
          While
            ( v "k" <: i 256,
              [
                Store (Global_addr "mtf" +: (v "k" *: i 8), v "k");
                Assign ("k", v "k" +: i 1);
              ] );
          Let ("acc", i 0);
          Let ("j", i 0);
          While
            ( v "j" <: i 4096,
              [
                Let ("c", Load1 (Global_addr "src" +: v "j"));
                (* find rank of c *)
                Let ("r", i 0);
                While
                  ( Load (Global_addr "mtf" +: (v "r" *: i 8)) <>: v "c",
                    [ Assign ("r", v "r" +: i 1) ] );
                Assign ("acc", (v "acc" +: v "r") %: i 65521);
                (* move to front *)
                Let ("m", v "r");
                While
                  ( v "m" >: i 0,
                    [
                      Store
                        ( Global_addr "mtf" +: (v "m" *: i 8),
                          Load (Global_addr "mtf" +: ((v "m" -: i 1) *: i 8)) );
                      Assign ("m", v "m" -: i 1);
                    ] );
                Store (Global_addr "mtf", v "c");
                Assign ("j", v "j" +: i 1);
              ] );
          Return (v "acc");
        ];
      func "main" []
        ([
           Expr (Call ("prepare", []));
           Let ("check", i 0);
           Let ("r", i 0);
           While
             ( v "r" <: i n,
               [
                 Assign ("check", (v "check" +: Call ("mtf_encode", [])) %: i 1000003);
                 Assign ("r", v "r" +: i 1);
               ] );
         ]
        @ checksum_epilogue);
    ]

(* 403.gcc: symbol-table/graph manipulation — build and walk a small DAG *)
let gcc_kernel n =
  Occlum_toolchain.Runtime.program
    ~globals:[ ("nodes", 512 * 16); ("worklist", 512 * 8) ]
    [
      func "build" [ "seed" ]
        [
          (* node i: [value; succ] pairs of 8 bytes *)
          Let ("k", i 0);
          While
            ( v "k" <: i 512,
              [
                Store
                  ( Global_addr "nodes" +: (v "k" *: i 16),
                    (v "k" *: v "seed") %: i 4099 );
                Store
                  ( Global_addr "nodes" +: (v "k" *: i 16) +: i 8,
                    (v "k" +: (v "seed" %: i 37) +: i 1) %: i 512 );
                Assign ("k", v "k" +: i 1);
              ] );
          Return (i 0);
        ];
      func "propagate" []
        [
          Let ("sum", i 0);
          Let ("k", i 0);
          While
            ( v "k" <: i 512,
              [
                Let ("cur", v "k");
                Let ("depth", i 0);
                While
                  ( v "depth" <: i 16,
                    [
                      Assign ("sum",
                              (v "sum" +: Load (Global_addr "nodes" +: (v "cur" *: i 16)))
                              %: i 1000003);
                      Assign ("cur", Load (Global_addr "nodes" +: (v "cur" *: i 16) +: i 8));
                      Assign ("depth", v "depth" +: i 1);
                    ] );
                Assign ("k", v "k" +: i 1);
              ] );
          Return (v "sum");
        ];
      func "main" []
        ([
           Let ("check", i 0);
           Let ("r", i 0);
           While
             ( v "r" <: i n,
               [
                 Expr (Call ("build", [ v "r" +: i 3 ]));
                 Assign ("check", (v "check" +: Call ("propagate", [])) %: i 1000003);
                 Assign ("r", v "r" +: i 1);
               ] );
         ]
        @ checksum_epilogue);
    ]

(* 429.mcf: Bellman-Ford-style relaxation over an arc array *)
let mcf n =
  Occlum_toolchain.Runtime.program
    ~globals:[ ("dist", 256 * 8); ("arcs", 1024 * 24) ]
    [
      func "setup" []
        [
          Let ("k", i 0);
          While
            ( v "k" <: i 256,
              [
                Store (Global_addr "dist" +: (v "k" *: i 8), i 1000000);
                Assign ("k", v "k" +: i 1);
              ] );
          Store (Global_addr "dist", i 0);
          Let ("a", i 0);
          While
            ( v "a" <: i 1024,
              [
                Store (Global_addr "arcs" +: (v "a" *: i 24), v "a" %: i 256);
                Store
                  ( Global_addr "arcs" +: (v "a" *: i 24) +: i 8,
                    ((v "a" *: i 7) +: i 13) %: i 256 );
                Store
                  ( Global_addr "arcs" +: (v "a" *: i 24) +: i 16,
                    (v "a" %: i 97) +: i 1 );
                Assign ("a", v "a" +: i 1);
              ] );
          Return (i 0);
        ];
      func ~reg_vars:[ "arc" ] "relax" []
        [
          Let ("changed", i 0);
          Let ("a", i 0);
          Assign ("arc", Global_addr "arcs");
          While
            ( v "a" <: i 1024,
              [
                Let ("u", Load (v "arc"));
                Let ("w", Load (v "arc" +: i 8));
                Let ("c", Load (v "arc" +: i 16));
                Let ("du", Load (Global_addr "dist" +: (v "u" *: i 8)));
                Let ("dw", Load (Global_addr "dist" +: (v "w" *: i 8)));
                If
                  ( v "du" +: v "c" <: v "dw",
                    [
                      Store (Global_addr "dist" +: (v "w" *: i 8), v "du" +: v "c");
                      Assign ("changed", v "changed" +: i 1);
                    ],
                    [] );
                Assign ("arc", v "arc" +: i 24);
                Assign ("a", v "a" +: i 1);
              ] );
          Return (v "changed");
        ];
      func "main" []
        ([
           Let ("check", i 0);
           Let ("r", i 0);
           While
             ( v "r" <: i n,
               [
                 Expr (Call ("setup", []));
                 Let ("rounds", i 0);
                 While
                   ( Binop (And, Call ("relax", []) >: i 0, v "rounds" <: i 20),
                     [ Assign ("rounds", v "rounds" +: i 1) ] );
                 Let ("k", i 0);
                 While
                   ( v "k" <: i 256,
                     [
                       Assign ("check",
                               (v "check" +: Load (Global_addr "dist" +: (v "k" *: i 8)))
                               %: i 1000003);
                       Assign ("k", v "k" +: i 1);
                     ] );
                 Assign ("r", v "r" +: i 1);
               ] );
         ]
        @ checksum_epilogue);
    ]

(* 445.gobmk: positional evaluation sweeps over a 19x19 board *)
let gobmk n =
  Occlum_toolchain.Runtime.program
    ~globals:[ ("board", 361 * 8) ]
    [
      func "seed_board" [ "s" ]
        [
          Let ("k", i 0);
          While
            ( v "k" <: i 361,
              [
                Store (Global_addr "board" +: (v "k" *: i 8),
                       ((v "k" *: v "s") +: i 5) %: i 3);
                Assign ("k", v "k" +: i 1);
              ] );
          Return (i 0);
        ];
      func "influence" []
        [
          Let ("score", i 0);
          Let ("y", i 1);
          While
            ( v "y" <: i 18,
              [
                Let ("x", i 1);
                While
                  ( v "x" <: i 18,
                    [
                      Let ("idx", (v "y" *: i 19) +: v "x");
                      Let ("c", Load (Global_addr "board" +: (v "idx" *: i 8)));
                      Let ("nb",
                           Load (Global_addr "board" +: ((v "idx" -: i 1) *: i 8))
                           +: Load (Global_addr "board" +: ((v "idx" +: i 1) *: i 8))
                           +: Load (Global_addr "board" +: ((v "idx" -: i 19) *: i 8))
                           +: Load (Global_addr "board" +: ((v "idx" +: i 19) *: i 8)));
                      If (v "c" =: i 1, [ Assign ("score", v "score" +: v "nb") ],
                          [ If (v "c" =: i 2,
                                [ Assign ("score", v "score" -: v "nb") ], []) ]);
                      Assign ("x", v "x" +: i 1);
                    ] );
                Assign ("y", v "y" +: i 1);
              ] );
          Return (v "score" &: i 0xFFFFFF);
        ];
      func "main" []
        ([
           Let ("check", i 0);
           Let ("r", i 0);
           While
             ( v "r" <: i n,
               [
                 Expr (Call ("seed_board", [ v "r" +: i 2 ]));
                 Assign ("check", (v "check" +: Call ("influence", [])) %: i 1000003);
                 Assign ("r", v "r" +: i 1);
               ] );
         ]
        @ checksum_epilogue);
    ]

(* 456.hmmer: Viterbi-style dynamic-programming matrix fill *)
let hmmer n =
  Occlum_toolchain.Runtime.program
    ~globals:[ ("dp", 2 * 128 * 8); ("seq", 256) ]
    [
      func "main" []
        ([
           Let ("k", i 0);
           While
             ( v "k" <: i 256,
               [
                 Store1 (Global_addr "seq" +: v "k", (v "k" *: i 31) %: i 4);
                 Assign ("k", v "k" +: i 1);
               ] );
           Let ("check", i 0);
           Let ("r", i 0);
           While
             ( v "r" <: i n,
               [
                 (* rolling two-row DP *)
                 Let ("row", i 0);
                 Let ("t", i 0);
                 While
                   ( v "t" <: i 256,
                     [
                       Let ("cur", (v "row" ^: i 1) *: i 1024);
                       Let ("prev", v "row" *: i 1024);
                       Let ("s", Load1 (Global_addr "seq" +: v "t"));
                       Let ("j", i 1);
                       While
                         ( v "j" <: i 128,
                           [
                             Let ("m", Load (Global_addr "dp" +: v "prev" +: ((v "j" -: i 1) *: i 8))
                                       +: (v "s" *: v "j"));
                             Let ("d", Load (Global_addr "dp" +: v "cur" +: ((v "j" -: i 1) *: i 8)) +: i 3);
                             If (v "d" >: v "m", [ Assign ("m", v "d") ], []);
                             Store (Global_addr "dp" +: v "cur" +: (v "j" *: i 8),
                                    v "m" %: i 1000003);
                             Assign ("j", v "j" +: i 1);
                           ] );
                       Assign ("row", v "row" ^: i 1);
                       Assign ("t", v "t" +: i 1);
                     ] );
                 Assign ("check",
                         (v "check" +: Load (Global_addr "dp" +: i (127 * 8))) %: i 1000003);
                 Assign ("r", v "r" +: i 1);
               ] );
         ]
        @ checksum_epilogue);
    ]

(* 458.sjeng: fixed-depth negamax over a synthetic move tree *)
let sjeng n =
  Occlum_toolchain.Runtime.program
    (prng_funcs
    @ [
        func "negamax" [ "state"; "depth" ]
          [
            If (v "depth" =: i 0, [ Return (v "state" %: i 1009) ], []);
            Let ("best", i (-100000));
            Let ("m", i 0);
            While
              ( v "m" <: i 4,
                [
                  Let ("child", Call ("rnd_next", [ v "state" +: v "m" +: i 1 ]));
                  Let ("sc", i 0 -: Call ("negamax", [ v "child"; v "depth" -: i 1 ]));
                  If (v "sc" >: v "best", [ Assign ("best", v "sc") ], []);
                  Assign ("m", v "m" +: i 1);
                ] );
            Return (v "best");
          ];
        func "main" []
          ([
             Let ("check", i 0);
             Let ("r", i 0);
             While
               ( v "r" <: i n,
                 [
                   Assign ("check",
                           (v "check" +: Call ("negamax", [ v "r" +: i 7; i 6 ]) +: i 100000)
                           %: i 1000003);
                   Assign ("r", v "r" +: i 1);
                 ] );
           ]
          @ checksum_epilogue);
      ])

(* 462.libquantum: quantum register simulation as bit-twiddling sweeps *)
let libquantum n =
  Occlum_toolchain.Runtime.program
    ~globals:[ ("reg", 2048 * 8) ]
    [
      func ~reg_vars:[ "p" ] "gates" [ "phase" ]
        [
          Let ("acc", i 0);
          Let ("k", i 0);
          Assign ("p", Global_addr "reg");
          While
            ( v "k" <: i 2048,
              [
                Let ("amp", Load (v "p"));
                Assign ("amp", v "amp" ^: (v "amp" <<: i 1) ^: v "phase");
                Assign ("amp", v "amp" &: i 0xFFFFFFFF);
                Store (v "p", v "amp");
                Assign ("acc", (v "acc" +: (v "amp" >>: i 5)) %: i 1000003);
                Assign ("p", v "p" +: i 8);
                Assign ("k", v "k" +: i 1);
              ] );
          Return (v "acc");
        ];
      func "main" []
        ([
           Let ("check", i 0);
           Let ("r", i 0);
           While
             ( v "r" <: i n,
               [
                 Assign ("check", (v "check" +: Call ("gates", [ v "r" ])) %: i 1000003);
                 Assign ("r", v "r" +: i 1);
               ] );
         ]
        @ checksum_epilogue);
    ]

(* 464.h264ref: sum-of-absolute-differences motion search over frames *)
let h264ref n =
  Occlum_toolchain.Runtime.program
    ~globals:[ ("frame0", 4096); ("frame1", 4096) ]
    [
      func "fill_frames" []
        [
          Let ("k", i 0);
          While
            ( v "k" <: i 4096,
              [
                Store1 (Global_addr "frame0" +: v "k", (v "k" *: i 13) %: i 251);
                Store1 (Global_addr "frame1" +: v "k", ((v "k" +: i 7) *: i 11) %: i 251);
                Assign ("k", v "k" +: i 1);
              ] );
          Return (i 0);
        ];
      func "sad_block" [ "off0"; "off1" ]
        [
          Let ("sad", i 0);
          Let ("y", i 0);
          While
            ( v "y" <: i 8,
              [
                Let ("x", i 0);
                While
                  ( v "x" <: i 8,
                    [
                      Let ("a", Load1 (Global_addr "frame0" +: v "off0"
                                       +: (v "y" *: i 64) +: v "x"));
                      Let ("b", Load1 (Global_addr "frame1" +: v "off1"
                                       +: (v "y" *: i 64) +: v "x"));
                      If (v "a" >: v "b",
                          [ Assign ("sad", v "sad" +: (v "a" -: v "b")) ],
                          [ Assign ("sad", v "sad" +: (v "b" -: v "a")) ]);
                      Assign ("x", v "x" +: i 1);
                    ] );
                Assign ("y", v "y" +: i 1);
              ] );
          Return (v "sad");
        ];
      func "main" []
        ([
           Expr (Call ("fill_frames", []));
           Let ("check", i 0);
           Let ("r", i 0);
           While
             ( v "r" <: i n,
               [
                 Let ("best", i 1000000);
                 Let ("c", i 0);
                 While
                   ( v "c" <: i 32,
                     [
                       Let ("s", Call ("sad_block", [ i 520; (v "c" *: i 8) +: i 8 ]));
                       If (v "s" <: v "best", [ Assign ("best", v "s") ], []);
                       Assign ("c", v "c" +: i 1);
                     ] );
                 Assign ("check", (v "check" +: v "best") %: i 1000003);
                 Assign ("r", v "r" +: i 1);
               ] );
         ]
        @ checksum_epilogue);
    ]

(* 471.omnetpp: discrete-event simulation over a binary-heap queue *)
let omnetpp n =
  Occlum_toolchain.Runtime.program
    ~globals:[ ("heap", 1024 * 8); ("hsize", 8) ]
    (prng_funcs
    @ [
        func "heap_push" [ "val" ]
          [
            Let ("sz", Load (Global_addr "hsize"));
            Store (Global_addr "heap" +: (v "sz" *: i 8), v "val");
            Let ("c", v "sz");
            While
              ( Binop
                  ( And,
                    v "c" >: i 0,
                    Load (Global_addr "heap" +: (((v "c" -: i 1) /: i 2) *: i 8))
                    >: Load (Global_addr "heap" +: (v "c" *: i 8)) ),
                [
                  Let ("par", (v "c" -: i 1) /: i 2);
                  Let ("tmp", Load (Global_addr "heap" +: (v "par" *: i 8)));
                  Store (Global_addr "heap" +: (v "par" *: i 8),
                         Load (Global_addr "heap" +: (v "c" *: i 8)));
                  Store (Global_addr "heap" +: (v "c" *: i 8), v "tmp");
                  Assign ("c", v "par");
                ] );
            Store (Global_addr "hsize", v "sz" +: i 1);
            Return (i 0);
          ];
        func "heap_pop" []
          [
            Let ("sz", Load (Global_addr "hsize") -: i 1);
            Let ("top", Load (Global_addr "heap"));
            Store (Global_addr "heap", Load (Global_addr "heap" +: (v "sz" *: i 8)));
            Store (Global_addr "hsize", v "sz");
            Let ("c", i 0);
            Let ("go", i 1);
            While
              ( v "go",
                [
                  Let ("l", (v "c" *: i 2) +: i 1);
                  Let ("rr", (v "c" *: i 2) +: i 2);
                  Let ("m", v "c");
                  If
                    ( Binop
                        ( And,
                          v "l" <: v "sz",
                          Load (Global_addr "heap" +: (v "l" *: i 8))
                          <: Load (Global_addr "heap" +: (v "m" *: i 8)) ),
                      [ Assign ("m", v "l") ], [] );
                  If
                    ( Binop
                        ( And,
                          v "rr" <: v "sz",
                          Load (Global_addr "heap" +: (v "rr" *: i 8))
                          <: Load (Global_addr "heap" +: (v "m" *: i 8)) ),
                      [ Assign ("m", v "rr") ], [] );
                  If
                    ( v "m" =: v "c",
                      [ Assign ("go", i 0) ],
                      [
                        Let ("tmp", Load (Global_addr "heap" +: (v "m" *: i 8)));
                        Store (Global_addr "heap" +: (v "m" *: i 8),
                               Load (Global_addr "heap" +: (v "c" *: i 8)));
                        Store (Global_addr "heap" +: (v "c" *: i 8), v "tmp");
                        Assign ("c", v "m");
                      ] );
                ] );
            Return (v "top");
          ];
        func "main" []
          ([
             Let ("check", i 0);
             Let ("r", i 0);
             While
               ( v "r" <: i n,
                 [
                   Store (Global_addr "hsize", i 0);
                   Let ("s", v "r" +: i 99);
                   Let ("e", i 0);
                   While
                     ( v "e" <: i 400,
                       [
                         Assign ("s", Call ("rnd_next", [ v "s" ]));
                         Expr (Call ("heap_push", [ v "s" &: i 0xFFFF ]));
                         Assign ("e", v "e" +: i 1);
                       ] );
                   While
                     ( Load (Global_addr "hsize") >: i 0,
                       [
                         Assign ("check", (v "check" +: Call ("heap_pop", [])) %: i 1000003);
                       ] );
                   Assign ("r", v "r" +: i 1);
                 ] );
           ]
          @ checksum_epilogue);
      ])

(* 473.astar: breadth-first wavefront pathfinding on a weighted grid *)
let astar n =
  Occlum_toolchain.Runtime.program
    ~globals:[ ("grid", 1024 * 8); ("cost", 1024 * 8) ]
    [
      func "main" []
        ([
           Let ("k", i 0);
           While
             ( v "k" <: i 1024,
               [
                 Store (Global_addr "grid" +: (v "k" *: i 8), ((v "k" *: i 37) %: i 9) +: i 1);
                 Assign ("k", v "k" +: i 1);
               ] );
           Let ("check", i 0);
           Let ("r", i 0);
           While
             ( v "r" <: i n,
               [
                 (* reset costs *)
                 Let ("j", i 0);
                 While
                   ( v "j" <: i 1024,
                     [
                       Store (Global_addr "cost" +: (v "j" *: i 8), i 1000000);
                       Assign ("j", v "j" +: i 1);
                     ] );
                 Store (Global_addr "cost", i 0);
                 (* relaxation sweeps (32x32 grid, 4-neighbourhood) *)
                 Let ("sweep", i 0);
                 While
                   ( v "sweep" <: i 8,
                     [
                       Let ("y", i 0);
                       While
                         ( v "y" <: i 32,
                           [
                             Let ("x", i 0);
                             While
                               ( v "x" <: i 32,
                                 [
                                   Let ("idx", (v "y" *: i 32) +: v "x");
                                   Let ("c", Load (Global_addr "cost" +: (v "idx" *: i 8)));
                                   Let ("w", Load (Global_addr "grid" +: (v "idx" *: i 8)));
                                   If
                                     ( v "x" >: i 0,
                                       [
                                         Let ("nc",
                                              Load (Global_addr "cost"
                                                    +: ((v "idx" -: i 1) *: i 8))
                                              +: v "w");
                                         If (v "nc" <: v "c", [ Assign ("c", v "nc") ], []);
                                       ],
                                       [] );
                                   If
                                     ( v "y" >: i 0,
                                       [
                                         Let ("nc2",
                                              Load (Global_addr "cost"
                                                    +: ((v "idx" -: i 32) *: i 8))
                                              +: v "w");
                                         If (v "nc2" <: v "c", [ Assign ("c", v "nc2") ], []);
                                       ],
                                       [] );
                                   Store (Global_addr "cost" +: (v "idx" *: i 8), v "c");
                                   Assign ("x", v "x" +: i 1);
                                 ] );
                             Assign ("y", v "y" +: i 1);
                           ] );
                       Assign ("sweep", v "sweep" +: i 1);
                     ] );
                 Assign ("check",
                         (v "check" +: Load (Global_addr "cost" +: i (1023 * 8)))
                         %: i 1000003);
                 Assign ("r", v "r" +: i 1);
               ] );
         ]
        @ checksum_epilogue);
    ]

(* 483.xalancbmk: tree transformation — build, rotate and fold an AST *)
let xalancbmk n =
  Occlum_toolchain.Runtime.program
    ~globals:[ ("tree", 1024 * 24) ]
    [
      (* node: [tag; left; right] *)
      func "build_tree" [ "seed" ]
        [
          Let ("k", i 0);
          While
            ( v "k" <: i 1024,
              [
                Store (Global_addr "tree" +: (v "k" *: i 24),
                       (v "k" *: v "seed") %: i 11);
                Store (Global_addr "tree" +: (v "k" *: i 24) +: i 8,
                       ((v "k" *: i 2) +: i 1) %: i 1024);
                Store (Global_addr "tree" +: (v "k" *: i 24) +: i 16,
                       ((v "k" *: i 2) +: i 2) %: i 1024);
                Assign ("k", v "k" +: i 1);
              ] );
          Return (i 0);
        ];
      func "fold" [ "node"; "depth" ]
        [
          If (v "depth" =: i 0, [ Return (i 1) ], []);
          Let ("tag", Load (Global_addr "tree" +: (v "node" *: i 24)));
          Let ("l", Load (Global_addr "tree" +: (v "node" *: i 24) +: i 8));
          Let ("rr", Load (Global_addr "tree" +: (v "node" *: i 24) +: i 16));
          Let ("a", Call ("fold", [ v "l"; v "depth" -: i 1 ]));
          Let ("b", Call ("fold", [ v "rr"; v "depth" -: i 1 ]));
          Return (((v "tag" +: i 1) *: (v "a" +: v "b")) %: i 1000003);
        ];
      func "main" []
        ([
           Let ("check", i 0);
           Let ("r", i 0);
           While
             ( v "r" <: i n,
               [
                 Expr (Call ("build_tree", [ v "r" +: i 5 ]));
                 Assign ("check", (v "check" +: Call ("fold", [ i 0; i 9 ])) %: i 1000003);
                 Assign ("r", v "r" +: i 1);
               ] );
         ]
        @ checksum_epilogue);
    ]

(* 400-omitted hmmm: 456 covered; the 12th kernel, 400.perlbench above,
   458, ... list below ties names to builders. *)
let all ~scale =
  [
    ("perlbench", perlbench (4 * scale));
    ("bzip2", bzip2 scale);
    ("gcc", gcc_kernel (8 * scale));
    ("mcf", mcf (2 * scale));
    ("gobmk", gobmk (16 * scale));
    ("hmmer", hmmer scale);
    ("sjeng", sjeng scale);
    ("libquantum", libquantum (8 * scale));
    ("h264ref", h264ref (8 * scale));
    ("omnetpp", omnetpp (4 * scale));
    ("astar", astar (2 * scale));
    ("xalancbmk", xalancbmk (4 * scale));
  ]
