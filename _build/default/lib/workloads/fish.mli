(** The fish-shell benchmark (Fig. 5a): a UnixBench-style script pushing
    data through a pipeline of separate utility processes —
    gen | tr | filter | wc — repeatedly. Process creation and pipe IPC
    dominate: the regime where SIPs beat EIPs by orders of magnitude. *)

val gen_prog : Occlum_toolchain.Ast.program
(** Writes argv[0] 33-byte lines to stdout, first byte cycling a-z. *)

val tr_prog : Occlum_toolchain.Ast.program
(** Uppercases a-z from stdin to stdout. *)

val filter_prog : Occlum_toolchain.Ast.program
(** Keeps lines whose first byte matches argv[0]. *)

val wc_prog : Occlum_toolchain.Ast.program
(** Counts stdin bytes and prints the total. *)

val shell_prog : Occlum_toolchain.Ast.program
(** The shell: argv = repeats, lines-per-round. Wires children's stdio
    with dup2 before each spawn (posix_spawn file-actions style). *)

val binaries : (string * Occlum_toolchain.Ast.program) list
