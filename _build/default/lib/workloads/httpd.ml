(* The lighttpd benchmark (Fig. 5c): a pre-forking web server. The
   master opens the listening socket, spawns [workers] worker processes
   that inherit it (possible because spawned SIPs inherit the open file
   table, §6), and every worker accepts and serves connections — the
   exact configuration the paper uses (master + 2 workers sharing the
   listening socket). Each response carries a 10 KiB page.

   Workers serve argv[0] requests each and exit; the master waits for
   them. The benchmark harness plays ApacheBench from outside the
   enclave through [Net]'s external endpoints. *)

open Occlum_toolchain.Ast
module Sys = Occlum_abi.Abi.Sys

let port = 8000
let page_size = 10 * 1024

let worker_prog =
  Occlum_toolchain.Runtime.program
    ~globals:[ ("req", 1024); ("page", page_size + 256) ]
    [
      (* build the 10 KiB page + a small HTTP header *)
      func ~reg_vars:[ "p" ] "build_page" []
        [
          Let ("hdr", Str "HTTP/1.1 200 OK\r\nContent-Length: 10240\r\n\r\n");
          Let ("hl", Call ("strlen", [ v "hdr" ]));
          Expr (Call ("memcpy", [ Global_addr "page"; v "hdr"; v "hl" ]));
          Let ("k", i 0);
          Assign ("p", Global_addr "page" +: v "hl");
          While
            ( v "k" <: i page_size,
              [
                Store1 (v "p", i 97 +: (v "k" %: i 26));
                Assign ("p", v "p" +: i 1);
                Assign ("k", v "k" +: i 1);
              ] );
          Return (v "hl" +: i page_size);
        ];
      func "main" []
        [
          (* fd 3 is the inherited listening socket *)
          Let ("quota", Call ("atoi", [ Call ("argv", [ i 0 ]) ]));
          Let ("total", Call ("build_page", []));
          Let ("served", i 0);
          While
            ( v "served" <: v "quota",
              [
                Let ("conn", Syscall (Sys.accept, [ i 3 ]));
                If
                  ( v "conn" >=: i 0,
                    [
                      (* read the request (single read is enough for the
                         benchmark client's short GET) *)
                      Expr (Call ("read", [ v "conn"; Global_addr "req"; i 1024 ]));
                      (* send header+page, handling partial writes *)
                      Let ("sent", i 0);
                      While
                        ( v "sent" <: v "total",
                          [
                            Let ("w",
                                 Call ("write",
                                       [ v "conn";
                                         Global_addr "page" +: v "sent";
                                         v "total" -: v "sent" ]));
                            If (v "w" <=: i 0, [ Assign ("sent", v "total") ],
                                [ Assign ("sent", v "sent" +: v "w") ]);
                          ] );
                      Expr (Call ("close", [ v "conn" ]));
                      Assign ("served", v "served" +: i 1);
                    ],
                    [] );
              ] );
          Return (v "served");
        ];
    ]

(* master: argv0 = workers, argv1 = requests per worker *)
let master_prog =
  Occlum_toolchain.Runtime.program
    ~globals:[ ("pids", 128) ]
    [
      func "main" []
        [
          Let ("workers", Call ("atoi", [ Call ("argv", [ i 0 ]) ]));
          Let ("quota", Call ("atoi", [ Call ("argv", [ i 1 ]) ]));
          Let ("sock", Syscall (Sys.socket, []));
          Expr (Syscall (Sys.bind, [ v "sock"; i port ]));
          Expr (Syscall (Sys.listen, [ v "sock"; i 128 ]));
          (* the listener must be at fd 3 for the workers *)
          If (v "sock" <>: i 3,
              [ Expr (Syscall (Sys.dup2, [ v "sock"; i 3 ])) ], []);
          Let ("k", i 0);
          While
            ( v "k" <: v "workers",
              [
                Let ("p",
                     Call ("spawn1",
                           [ Str "/bin/httpd_worker"; i 17;
                             Call ("itoa", [ v "quota" ]);
                             (Global_addr "_rt_itoa_buf" +: i 31)
                             -: Call ("itoa", [ v "quota" ]) ]));
                Store (Global_addr "pids" +: (v "k" *: i 8), v "p");
                Assign ("k", v "k" +: i 1);
              ] );
          Assign ("k", i 0);
          While
            ( v "k" <: v "workers",
              [
                Expr (Call ("waitpid",
                            [ Load (Global_addr "pids" +: (v "k" *: i 8)); i 0 ]));
                Assign ("k", v "k" +: i 1);
              ] );
          Return (i 0);
        ];
    ]

(* The artifact's multithreaded mode: one process whose request loop
   runs in [threads] LibOS threads (clone) sharing the listening socket
   and the page buffer — "LibOS threads are treated as SIPs that happen
   to share resources" (§6). Each thread polls the listener, serves its
   quota, and exits; main clones them and waits. argv: threads, quota *)
let mt_prog =
  Occlum_toolchain.Runtime.program
    ~globals:[ ("req", 1024); ("page", page_size + 256); ("total", 8);
               ("tids", 128) ]
    [
      func ~reg_vars:[ "p" ] "build_page" []
        [
          Let ("hdr", Str "HTTP/1.1 200 OK\r\nContent-Length: 10240\r\n\r\n");
          Let ("hl", Call ("strlen", [ v "hdr" ]));
          Expr (Call ("memcpy", [ Global_addr "page"; v "hdr"; v "hl" ]));
          Let ("k", i 0);
          Assign ("p", Global_addr "page" +: v "hl");
          While
            ( v "k" <: i page_size,
              [
                Store1 (v "p", i 97 +: (v "k" %: i 26));
                Assign ("p", v "p" +: i 1);
                Assign ("k", v "k" +: i 1);
              ] );
          Return (v "hl" +: i page_size);
        ];
      func "serve_loop" [ "quota" ]
        [
          Let ("served", i 0);
          Let ("pollent", Call ("malloc", [ i 24 ]));
          While
            ( v "served" <: v "quota",
              [
                (* event-driven: poll the shared listener, then accept *)
                Store (v "pollent", i 3);
                Store (v "pollent" +: i 8, i 1);
                Store (v "pollent" +: i 16, i 0);
                Expr (Syscall (Occlum_abi.Abi.Sys.poll, [ v "pollent"; i 1; i (-1) ]));
                Let ("conn", Syscall (Sys.accept, [ i 3 ]));
                If
                  ( v "conn" >=: i 0,
                    [
                      Expr (Call ("read", [ v "conn"; Global_addr "req"; i 1024 ]));
                      Let ("sent", i 0);
                      Let ("totlen", Load (Global_addr "total"));
                      While
                        ( v "sent" <: v "totlen",
                          [
                            Let ("w",
                                 Call ("write",
                                       [ v "conn"; Global_addr "page" +: v "sent";
                                         v "totlen" -: v "sent" ]));
                            If (v "w" <=: i 0, [ Assign ("sent", v "totlen") ],
                                [ Assign ("sent", v "sent" +: v "w") ]);
                          ] );
                      Expr (Call ("close", [ v "conn" ]));
                      Assign ("served", v "served" +: i 1);
                    ],
                    [] );
              ] );
          Return (v "served");
        ];
      func "thread_main" [ "quota" ]
        [ Return (Call ("serve_loop", [ v "quota" ])) ];
      func "main" []
        [
          Let ("threads", Call ("atoi", [ Call ("argv", [ i 0 ]) ]));
          Let ("quota", Call ("atoi", [ Call ("argv", [ i 1 ]) ]));
          Store (Global_addr "total", Call ("build_page", []));
          Let ("sock", Syscall (Sys.socket, []));
          Expr (Syscall (Sys.bind, [ v "sock"; i port ]));
          Expr (Syscall (Sys.listen, [ v "sock"; i 128 ]));
          If (v "sock" <>: i 3, [ Expr (Syscall (Sys.dup2, [ v "sock"; i 3 ])) ], []);
          Let ("k", i 0);
          While
            ( v "k" <: v "threads",
              [
                Let ("stack", Syscall (Sys.mmap, [ i 0; i 16384; i (-1); i 0 ]));
                Let ("tid",
                     Syscall (Occlum_abi.Abi.Sys.clone,
                              [ Func_addr "thread_main"; v "stack" +: i 16384;
                                v "quota" ]));
                If (v "tid" <: i 0, [ Return (i 1) ], []);
                Store (Global_addr "tids" +: (v "k" *: i 8), v "tid");
                Assign ("k", v "k" +: i 1);
              ] );
          Assign ("k", i 0);
          While
            ( v "k" <: v "threads",
              [
                Expr (Call ("waitpid",
                            [ Load (Global_addr "tids" +: (v "k" *: i 8)); i 0 ]));
                Assign ("k", v "k" +: i 1);
              ] );
          Return (i 0);
        ];
    ]

let binaries =
  [ ("/bin/httpd_worker", worker_prog); ("/bin/httpd", master_prog);
    ("/bin/httpd_mt", mt_prog) ]

let request = "GET /index.html HTTP/1.1\r\nHost: bench\r\n\r\n"
