lib/abi/abi.ml:
