(* Register conventions of the Occlum toolchain's code generator.

   r0          function result
   r1..r5      expression evaluation window (depth-allocated)
   r6..r8      reg_vars: variables pinned to registers for a function
   r9, r10     call/return scratch (trampoline target, popped return addr)
   r11         code base, set by the loader, never written by user code
   r12         data base (D.begin), ditto
   r13         unused
   sp  (r14)   stack pointer
   scr (r15)   MMDSFI scratch, reserved for cfi_guard sequences *)

open Occlum_isa

let result = Reg.r0
let depth_base = 1
let depth_limit = 5 (* expression regs r1..r5 *)
let reg_var_base = 6 (* r6..r8 *)
let call_scratch = Reg.r9
let ret_scratch = Reg.r10
let code_base = Reg.r11
let data_base = Reg.r12

let depth_reg d =
  if d < depth_base || d > depth_limit then
    invalid_arg "Codegen: expression too deep (max 5 nested temporaries)";
  Reg.of_int d

let reg_var i = Reg.of_int (reg_var_base + i)
