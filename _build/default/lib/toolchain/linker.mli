(** The MMDSFI-aware linker (§8): reserves the loader-owned trampoline
    area at the head of the code image, keeps the code segment pure code
    (literals live in the data image), and emits the OELF with the
    layout the loader expects (4 KiB guard gap between segments). *)

exception Link_error of string

val link : Layout.t -> Asm.item list -> Occlum_oelf.Oelf.t
(** @raise Link_error on unresolved labels or a missing [_start]. *)
