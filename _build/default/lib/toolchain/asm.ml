(* Assembly layer between the code generator and raw bytes: symbolic
   labels, label-relative control transfers, and the three MMDSFI
   pseudo-instructions of Figure 2b, expanded here into their machine
   sequences. Assembly is two-pass: item sizes are position-independent,
   so pass one assigns offsets and pass two emits resolved bytes. *)

open Occlum_isa

type item =
  | Ins of Insn.t
  | Label of string                  (* no bytes; a link-time symbol *)
  | Jmp_l of string
  | Jcc_l of Insn.cond * string
  | Call_l of string
  | Lea_code of Reg.t * string       (* reg := code_base + offset(label) *)
  | Mem_guard of Insn.mem            (* bndcl+bndcu %bnd0 on the operand *)
  | Cfi_guard of Reg.t               (* load+bndcl+bndcu %bnd1 (Fig. 2b) *)
  | Cfi_label_here                   (* domain id patched by the loader *)

let item_to_string = function
  | Ins i -> "  " ^ Insn.to_string i
  | Label l -> l ^ ":"
  | Jmp_l l -> "  jmp " ^ l
  | Jcc_l (c, l) -> Printf.sprintf "  j%s %s" (Insn.cond_name c) l
  | Call_l l -> "  call " ^ l
  | Lea_code (r, l) -> Printf.sprintf "  lea_code %s, %s" (Reg.name r) l
  | Mem_guard m -> "  mem_guard " ^ Insn.mem_to_string m
  | Cfi_guard r -> "  cfi_guard " ^ Reg.name r
  | Cfi_label_here -> "  cfi_label"

(* Expansion of pseudo-instructions and label forms into concrete
   instructions (with displacement 0 placeholders — all operand encodings
   are fixed-size, so placeholder and final bytes have equal length). *)
let expand ?(target = 0) item : Insn.t list =
  match item with
  | Ins i -> [ i ]
  | Label _ -> []
  | Jmp_l _ -> [ Jmp target ]
  | Jcc_l (c, _) -> [ Jcc (c, target) ]
  | Call_l _ -> [ Call target ]
  | Lea_code (r, _) ->
      [ Mov_reg (r, Codegen_regs.code_base); Alu (Add, r, O_imm (Int64.of_int target)) ]
  | Mem_guard m -> [ Bndcl (Reg.bnd0, Ea_mem m); Bndcu (Reg.bnd0, Ea_mem m) ]
  | Cfi_guard r ->
      [
        Load
          { dst = Reg.scratch;
            src = Sib { base = r; index = None; scale = 1; disp = 0 };
            size = 8;
          };
        Bndcl (Reg.bnd1, Ea_reg Reg.scratch);
        Bndcu (Reg.bnd1, Ea_reg Reg.scratch);
      ]
  | Cfi_label_here -> [ Cfi_label 0l ]

let item_size item =
  List.fold_left (fun acc i -> acc + Codec.length i) 0 (expand item)

exception Unknown_label of string

(* [assemble items ~base] lays the items out starting at code offset
   [base] and returns the bytes plus the symbol table. Displacements for
   label forms are relative to the end of the transfer instruction, as
   the machine defines them. *)
let assemble items ~base =
  let offsets = Hashtbl.create 64 in
  let pos = ref base in
  let item_offsets =
    List.map
      (fun item ->
        (match item with
        | Label l ->
            if Hashtbl.mem offsets l then invalid_arg ("Asm: duplicate label " ^ l);
            Hashtbl.replace offsets l !pos
        | _ -> ());
        let o = !pos in
        pos := !pos + item_size item;
        o)
      items
  in
  let lookup l =
    match Hashtbl.find_opt offsets l with
    | Some o -> o
    | None -> raise (Unknown_label l)
  in
  let buf = Buffer.create 4096 in
  List.iter2
    (fun item off ->
      let emit insns = List.iter (Codec.encode_into buf) insns in
      match item with
      | Label _ -> ()
      | Jmp_l l ->
          let insn_end = off + item_size item in
          emit [ Insn.Jmp (lookup l - insn_end) ]
      | Jcc_l (c, l) ->
          let insn_end = off + item_size item in
          emit [ Insn.Jcc (c, lookup l - insn_end) ]
      | Call_l l ->
          let insn_end = off + item_size item in
          emit [ Insn.Call (lookup l - insn_end) ]
      | Lea_code (_, l) -> emit (expand ~target:(lookup l) item)
      | Ins _ | Mem_guard _ | Cfi_guard _ | Cfi_label_here -> emit (expand item))
    items item_offsets;
  (Buffer.to_bytes buf, offsets)
