(** Assembly layer between the code generator and raw bytes: symbolic
    labels, label-relative control transfers, and the three MMDSFI
    pseudo-instructions of Figure 2b, expanded into machine sequences. *)

open Occlum_isa

type item =
  | Ins of Insn.t
  | Label of string                 (** no bytes; a link-time symbol *)
  | Jmp_l of string
  | Jcc_l of Insn.cond * string
  | Call_l of string
  | Lea_code of Reg.t * string      (** reg := code_base + offset(label) *)
  | Mem_guard of Insn.mem           (** bndcl+bndcu %bnd0 on the operand *)
  | Cfi_guard of Reg.t              (** load+bndcl+bndcu %bnd1 (Fig. 2b) *)
  | Cfi_label_here                  (** id patched by the loader *)

val item_to_string : item -> string

val expand : ?target:int -> item -> Insn.t list
(** The concrete instructions an item assembles to; label forms take the
    resolved [target]. All expansions are fixed-size per item. *)

val item_size : item -> int

exception Unknown_label of string

val assemble : item list -> base:int -> Bytes.t * (string, int) Hashtbl.t
(** Two-pass assembly starting at code offset [base]; returns the bytes
    and the symbol table. @raise Unknown_label on unresolved references. *)
