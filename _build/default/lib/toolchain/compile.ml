(* The compiler driver: Occlang -> instrumented OASM -> OELF binary.
   This is the whole "Occlum toolchain" of Figure 1b; its output still
   has to pass the independent verifier before the LibOS will load it. *)

type stats = {
  items : int;
  guards_before_opt : int;
  guards_after_opt : int;
}

let to_items ?(config = Codegen.sfi) prog =
  let layout, items = Codegen.gen_program config prog in
  let before = Optimize.count_guards items in
  let items = if config.optimize then Optimize.run items else items in
  let stats =
    {
      items = List.length items;
      guards_before_opt = before;
      guards_after_opt = Optimize.count_guards items;
    }
  in
  (layout, items, stats)

let compile ?(config = Codegen.sfi) prog =
  let layout, items, stats = to_items ~config prog in
  (Linker.link layout items, stats)

let compile_exn ?config prog = fst (compile ?config prog)

(* Textual listing of the generated assembly, for debugging and docs. *)
let listing ?config prog =
  let _, items, _ = to_items ?config prog in
  String.concat "\n" (List.map Asm.item_to_string items)
