(* Reference interpreter for Occlang. It executes the AST directly over
   a data region laid out by {!Layout}, so a compiled binary run on the
   simulated machine and the same program run here must produce the same
   observable behaviour (syscall trace, memory effects, exit value).
   The test suite uses this for differential testing of the whole
   toolchain + machine stack, including under instrumentation. *)

exception Interp_fault of string

let fault fmt = Printf.ksprintf (fun m -> raise (Interp_fault m)) fmt

(* Function "addresses" live in a distinct id space; programs that mix
   function pointers with data-pointer arithmetic are out of scope. *)
let func_id_base = 0x7F00_0000L

type env = {
  prog : Ast.program;
  layout : Layout.t;
  mem : Bytes.t; (* the data region, D-relative addressing *)
  syscall : int -> int64 array -> Bytes.t -> int64;
  mutable fuel : int;
  funcs : (string, Ast.func) Hashtbl.t;
  func_ids : (string * int64) list;
}

exception Return_value of int64

let check_addr env addr size =
  let a = Int64.to_int addr in
  if Int64.compare addr 0L < 0
     || Int64.compare addr (Int64.of_int (Bytes.length env.mem)) >= 0
     || a + size > Bytes.length env.mem
  then fault "memory access out of data region: 0x%Lx" addr;
  a

let load64 env addr = Bytes.get_int64_le env.mem (check_addr env addr 8)
let load8 env addr = Int64.of_int (Char.code (Bytes.get env.mem (check_addr env addr 1)))
let store64 env addr v = Bytes.set_int64_le env.mem (check_addr env addr 8) v

let store8 env addr v =
  Bytes.set env.mem (check_addr env addr 1)
    (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))

let burn env =
  env.fuel <- env.fuel - 1;
  if env.fuel <= 0 then fault "out of fuel"

let binop op a b =
  let open Int64 in
  let of_bool c = if c then 1L else 0L in
  match (op : Ast.binop) with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div -> if b = 0L then fault "division by zero" else unsigned_div a b
  | Rem -> if b = 0L then fault "division by zero" else unsigned_rem a b
  | And -> logand a b
  | Or -> logor a b
  | Xor -> logxor a b
  | Shl -> shift_left a (to_int (logand b 63L))
  | Shr -> shift_right_logical a (to_int (logand b 63L))
  | Eq -> of_bool (equal a b)
  | Ne -> of_bool (not (equal a b))
  | Lt -> of_bool (compare a b < 0)
  | Le -> of_bool (compare a b <= 0)
  | Gt -> of_bool (compare a b > 0)
  | Ge -> of_bool (compare a b >= 0)

let unop op a =
  match (op : Ast.unop) with
  | Neg -> Int64.neg a
  | Not -> Int64.lognot a
  | Lnot -> if Int64.equal a 0L then 1L else 0L

let rec eval env frame (e : Ast.expr) =
  burn env;
  match e with
  | Int v -> v
  | Str s -> Int64.of_int (Layout.literal_offset env.layout s)
  | Var x -> (
      match Hashtbl.find_opt frame x with
      | Some v -> v
      | None -> fault "unbound variable %s" x)
  | Global_addr g -> Int64.of_int (Layout.global_offset env.layout g)
  | Data_addr off -> Int64.of_int off
  | Frame_addr _ -> fault "Frame_addr is not supported by the reference interpreter"
  | Load e -> load64 env (eval env frame e)
  | Load1 e -> load8 env (eval env frame e)
  | Unop (op, e) -> unop op (eval env frame e)
  | Binop (op, a, b) ->
      (* right-to-left, matching the code generator *)
      let vb = eval env frame b in
      let va = eval env frame a in
      binop op va vb
  | Call (f, args) -> call env f (eval_args env frame args)
  | Call_ptr (e, args) ->
      let vs = eval_args env frame args in
      let target = eval env frame e in
      let name =
        match List.find_opt (fun (_, id) -> Int64.equal id target) env.func_ids with
        | Some (n, _) -> n
        | None -> fault "indirect call to non-function value 0x%Lx" target
      in
      call env name vs
  | Func_addr f -> (
      match List.assoc_opt f env.func_ids with
      | Some id -> id
      | None -> fault "unknown function %s" f)
  | Syscall (nr, args) ->
      let vs = eval_args env frame args in
      env.syscall nr (Array.of_list vs) env.mem

and eval_args env frame args =
  (* evaluate right-to-left but return in source order *)
  List.rev (List.map (eval env frame) (List.rev args))

and call env fname args =
  let f =
    match Hashtbl.find_opt env.funcs fname with
    | Some f -> f
    | None -> fault "unknown function %s" fname
  in
  if List.length args <> List.length f.params then
    fault "%s: arity mismatch" fname;
  let frame = Hashtbl.create 16 in
  List.iter2 (fun p a -> Hashtbl.replace frame p a) f.params args;
  match exec_block env frame f.body with
  | () -> 0L (* fall off the end: return 0 *)
  | exception Return_value v -> v

and exec_block env frame stmts = List.iter (exec_stmt env frame) stmts

and exec_stmt env frame (s : Ast.stmt) =
  burn env;
  match s with
  | Let (x, e) | Assign (x, e) -> Hashtbl.replace frame x (eval env frame e)
  | Store (a, v) ->
      let vv = eval env frame v in
      let va = eval env frame a in
      store64 env va vv
  | Store1 (a, v) ->
      let vv = eval env frame v in
      let va = eval env frame a in
      store8 env va vv
  | If (c, t, e) ->
      if not (Int64.equal (eval env frame c) 0L) then exec_block env frame t
      else exec_block env frame e
  | While (c, body) ->
      while not (Int64.equal (eval env frame c) 0L) do
        exec_block env frame body
      done
  | Return e -> raise (Return_value (eval env frame e))
  | Expr e -> ignore (eval env frame e)

let run ?(fuel = 50_000_000) ?(args = []) ~syscall (prog : Ast.program) =
  Ast.check_program prog;
  let layout = Layout.of_program prog in
  let mem = Bytes.make layout.data_region_size '\x00' in
  Bytes.blit (Layout.initial_data_image layout) 0 mem 0 layout.data_init_size;
  Layout.write_args mem ~data_base:0 args;
  let funcs = Hashtbl.create 16 in
  List.iter (fun (f : Ast.func) -> Hashtbl.replace funcs f.name f) prog.funcs;
  let func_ids =
    List.mapi
      (fun idx (f : Ast.func) -> (f.name, Int64.add func_id_base (Int64.of_int idx)))
      prog.funcs
  in
  let env = { prog; layout; mem; syscall; fuel; funcs; func_ids } in
  call env "main" []

(* A standard harness for pure programs: supports exit/write(1|2)/brk,
   captures output, returns (exit_or_main_value, stdout). *)
exception Exited of int64

let run_pure ?fuel ?args prog =
  let out = Buffer.create 256 in
  let layout = Layout.of_program prog in
  let brk = ref layout.heap_start in
  let syscall nr (a : int64 array) mem =
    let arg i = if i < Array.length a then a.(i) else 0L in
    if nr = Occlum_abi.Abi.Sys.exit then raise (Exited (arg 0))
    else if nr = Occlum_abi.Abi.Sys.write then begin
      let fd = Int64.to_int (arg 0) in
      let ptr = Int64.to_int (arg 1) and len = Int64.to_int (arg 2) in
      if fd <> 1 && fd <> 2 then Int64.of_int Occlum_abi.Abi.Errno.ebadf
      else if ptr < 0 || len < 0 || ptr + len > Bytes.length mem then
        Int64.of_int Occlum_abi.Abi.Errno.efault
      else begin
        Buffer.add_subbytes out mem ptr len;
        Int64.of_int len
      end
    end
    else if nr = Occlum_abi.Abi.Sys.brk then begin
      let req = Int64.to_int (arg 0) in
      if req = 0 then Int64.of_int !brk
      else if req >= layout.heap_start && req <= layout.heap_start + layout.heap_size
      then begin
        brk := req;
        Int64.of_int !brk
      end
      else Int64.of_int Occlum_abi.Abi.Errno.enomem
    end
    else Int64.of_int Occlum_abi.Abi.Errno.enosys
  in
  match run ?fuel ?args ~syscall prog with
  | v -> (v, Buffer.contents out)
  | exception Exited v -> (v, Buffer.contents out)
