lib/toolchain/codegen.ml: Asm Ast Codegen_regs Hashtbl Insn Int64 Layout List Occlum_abi Occlum_isa Option Printf Reg
