lib/toolchain/optimize.mli: Asm
