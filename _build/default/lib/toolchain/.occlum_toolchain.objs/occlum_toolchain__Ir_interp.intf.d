lib/toolchain/ir_interp.mli: Ast Bytes
