lib/toolchain/parser.ml: Ast Buffer Int64 List Printf Runtime String
