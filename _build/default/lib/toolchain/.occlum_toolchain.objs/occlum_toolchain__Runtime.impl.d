lib/toolchain/runtime.ml: Ast Layout Occlum_abi
