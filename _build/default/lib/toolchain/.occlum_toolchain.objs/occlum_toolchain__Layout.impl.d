lib/toolchain/layout.ml: Ast Bytes Int64 List Occlum_oelf Occlum_util String
