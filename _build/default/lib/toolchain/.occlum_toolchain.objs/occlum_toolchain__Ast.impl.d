lib/toolchain/ast.ml: Int64 List Printf
