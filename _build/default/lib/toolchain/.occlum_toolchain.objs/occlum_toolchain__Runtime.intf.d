lib/toolchain/runtime.mli: Ast
