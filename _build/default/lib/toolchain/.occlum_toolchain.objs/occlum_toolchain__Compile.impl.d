lib/toolchain/compile.ml: Asm Codegen Linker List Optimize String
