lib/toolchain/asm.mli: Bytes Hashtbl Insn Occlum_isa Reg
