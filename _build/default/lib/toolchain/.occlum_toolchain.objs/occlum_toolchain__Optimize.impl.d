lib/toolchain/optimize.ml: Array Asm Codegen_regs Hashtbl Insn Int64 List Occlum_isa Occlum_oelf Option Queue Reg String
