lib/toolchain/codegen_regs.ml: Occlum_isa Reg
