lib/toolchain/linker.mli: Asm Layout Occlum_oelf
