lib/toolchain/linker.ml: Asm Bytes Hashtbl Layout List Occlum_oelf String
