lib/toolchain/layout.mli: Ast Bytes
