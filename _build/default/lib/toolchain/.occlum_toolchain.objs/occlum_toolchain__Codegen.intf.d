lib/toolchain/codegen.mli: Asm Ast Layout
