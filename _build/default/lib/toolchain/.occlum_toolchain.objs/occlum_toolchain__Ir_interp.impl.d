lib/toolchain/ir_interp.ml: Array Ast Buffer Bytes Char Hashtbl Int64 Layout List Occlum_abi Printf
