lib/toolchain/compile.mli: Asm Ast Codegen Layout Occlum_oelf
