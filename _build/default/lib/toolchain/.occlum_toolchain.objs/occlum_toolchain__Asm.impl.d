lib/toolchain/asm.ml: Buffer Codec Codegen_regs Hashtbl Insn Int64 List Occlum_isa Printf Reg
