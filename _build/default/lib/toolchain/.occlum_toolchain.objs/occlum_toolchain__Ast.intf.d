lib/toolchain/ast.mli:
