lib/toolchain/parser.mli: Ast
