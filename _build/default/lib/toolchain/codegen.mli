(** Occlang → OASM code generation with MMDSFI instrumentation
    (Figure 2c): mem_guards before loads/stores (including stack traffic
    from push/pop/call), cfi_guards before indirect transfers,
    cfi_labels at every indirect-transfer target, and returns compiled
    to pop+cfi_guard+jmp — [ret] never appears in instrumented output. *)

type config = {
  guard_loads : bool;
  guard_stores : bool;
  guard_control : bool;
  optimize : bool;  (** run the §4.3 range-analysis optimizer *)
  heap_size : int;
  stack_size : int;
}

val sfi : config
(** Full instrumentation + optimization: the production configuration,
    the only one whose output passes the verifier. *)

val sfi_naive : config
(** Full instrumentation, no optimization (Fig. 7b's "naive"). *)

val bare : config
(** No instrumentation: native-Linux builds and the Fig. 7 baseline. *)

exception Codegen_error of string

val func_label : string -> string
(** The link-time symbol of a function ("f_" ^ name). *)

val gen_program : config -> Ast.program -> Layout.t * Asm.item list
(** Generate the entry stub and every function. The result is
    unoptimized; see {!Optimize.run}.
    @raise Ast.Ill_formed or @raise Codegen_error on bad input. *)
