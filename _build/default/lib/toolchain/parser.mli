(** A textual frontend for Occlang (the input to [bin/occlum_cc]).

    C-flavoured syntax:
    {v
    global buf[4096];
    fn main() regs(p) {
      let k = 0;
      p = buf;                       // a global's name is its address
      while (k < 10) { store64(p, k); p = p + 8; k = k + 1; }
      if (k == 10) { print_int(load64(buf)); } else { exit(1); }
      return 0;
    }
    v}

    Builtins: [load64]/[load8]/[store64]/[store8], [syscall(n, ...)],
    [callptr(f, ...)], [frameaddr(x)]. Bare global names evaluate to
    their address; bare function names to their code address. Programs
    are linked against {!Runtime}. *)

exception Parse_error of string

val parse : string -> Ast.program
(** @raise Parse_error with a line-numbered message. *)

val parse_file : string -> Ast.program
