(* The range-analysis guard optimizer of §4.3.

   The abstract domain, per program point:
   - facts: base register -> interval [lo, hi] meaning "for every d in
     [lo, hi], the address (base + d) lies in D or a guard region" —
     accessing it either succeeds inside D or faults in a guard page;
   - aliases: (d, s, k) records d = s + k, so a fact refreshed through a
     copy of a pointer also refreshes the original.

   Facts are created by mem_guards (which prove the exact address is in
   D, hence +-(G-1) around it is in D∪G) and refreshed by *verified*
   accesses (a verified access that does not fault must be in D, by the
   same guard-slack argument). Increments by small constants shift an
   interval; any other write kills it. cfi_labels and calls reset the
   state to top, because any indirect transfer may land there.

   Two rewrites, exactly the ones the paper names:
   1. redundant check elimination — delete a mem_guard whose operand is
      already covered by the incoming facts;
   2. loop check hoisting — copy a guard from a loop body's straight-line
      prefix to the preheader (codegen rotates loops, so the preheader
      runs only when the body will), after which pass 1 usually deletes
      the in-loop original.

   The optimizer is untrusted: the verifier independently re-derives all
   of this over the final bytes, so a bug here can break performance or
   verifiability, never safety. *)

open Occlum_isa

let slack = Occlum_oelf.Oelf.guard_size - 1 (* 4095 *)
let shift_limit = 1 lsl 20

type state = {
  facts : (int * (int * int)) list; (* reg -> interval *)
  aliases : (int * int * int) list; (* (d, s, k): d = s + k *)
}

let top = { facts = []; aliases = [] }

let normalize s =
  {
    facts = List.sort_uniq compare s.facts;
    aliases = List.sort_uniq compare s.aliases;
  }

let meet a b =
  let facts =
    List.filter_map
      (fun (r, (lo, hi)) ->
        match List.assoc_opt r b.facts with
        | Some (lo', hi') ->
            let lo = max lo lo' and hi = min hi hi' in
            if lo <= hi then Some (r, (lo, hi)) else None
        | None -> None)
      a.facts
  in
  let aliases = List.filter (fun al -> List.mem al b.aliases) a.aliases in
  normalize { facts; aliases }

let kill_reg s r =
  {
    facts = List.remove_assoc r s.facts;
    aliases = List.filter (fun (d, src, _) -> d <> r && src <> r) s.aliases;
  }

(* r := r + c *)
let shift_reg s r c =
  if abs c > shift_limit then kill_reg s r
  else
    {
      facts =
        List.filter_map
          (fun (r', (lo, hi)) ->
            if r' = r then
              let lo = lo - c and hi = hi - c in
              if hi < -shift_limit || lo > shift_limit then None
              else Some (r', (lo, hi))
            else Some (r', (lo, hi)))
          s.facts;
      aliases =
        List.map
          (fun (d, src, k) ->
            if d = r then (d, src, k + c)
            else if src = r then (d, src, k - c)
            else (d, src, k))
          s.aliases;
    }

(* d := s (+0) *)
let copy_reg s d src =
  if d = src then s
  else
    let s = kill_reg s d in
    let facts =
      match List.assoc_opt src s.facts with
      | Some intv -> (d, intv) :: s.facts
      | None -> s.facts
    in
    { facts; aliases = (d, src, 0) :: s.aliases }

(* Set the fact "base + anchor is in D" (from a guard or a verified
   access), propagating through aliases. The new interval is hulled with
   any overlapping existing one (both are true, and overlapping true
   intervals union to their hull), which keeps the transfer monotone for
   the fixpoint; clamping keeps the lattice finite. *)
let clamp_bound = 131071

let set_anchor s base anchor =
  let set facts r a =
    let fresh = (a - slack, a + slack) in
    let combined =
      match List.assoc_opt r facts with
      | Some (lo, hi) when lo <= snd fresh + 1 && fst fresh <= hi + 1 ->
          (min lo (fst fresh), max hi (snd fresh))
      | _ -> fresh
    in
    let lo = max (fst combined) (-clamp_bound)
    and hi = min (snd combined) clamp_bound in
    if lo <= hi then (r, (lo, hi)) :: List.remove_assoc r facts
    else List.remove_assoc r facts
  in
  let facts = set s.facts base anchor in
  let facts =
    List.fold_left
      (fun facts (d, src, k) ->
        if d = base then set facts src (anchor + k)
        else if src = base then set facts d (anchor - k)
        else facts)
      facts s.aliases
  in
  { s with facts }

let covers s base lo hi =
  match List.assoc_opt base s.facts with
  | Some (flo, fhi) -> flo <= lo && hi <= fhi
  | None -> false

(* A simple (index-free) SIB operand. *)
let simple_sib (m : Insn.mem) =
  match m with
  | Sib { base; index = None; scale = _; disp } -> Some (Reg.to_int base, disp)
  | Sib _ | Rip_rel _ | Abs _ -> None

(* Model one access: if provable, refresh; in the optimizer all accesses
   are still guard-protected during analysis, so unprovable accesses just
   leave the state unchanged. *)
let access s m ~size =
  match simple_sib m with
  | None -> s
  | Some (base, disp) ->
      if covers s base disp (disp + size - 1) then set_anchor s base disp else s

let sp = Reg.to_int Reg.sp

let push_effect s =
  (* store at [sp-8], then sp -= 8 *)
  let s = if covers s sp (-8) (-1) then set_anchor s sp (-8) else s in
  shift_reg s sp (-8)

let pop_effect s dst =
  let s = if covers s sp 0 7 then set_anchor s sp 0 else s in
  let s = shift_reg s sp 8 in
  match dst with Some r -> kill_reg s (Reg.to_int r) | None -> s

(* Which registers does an instruction write? Used by hoist trace-back. *)
let insn_writes (i : Insn.t) =
  match i with
  | Mov_imm (r, _) | Mov_reg (r, _) | Lea (r, _) | Alu (_, r, _)
  | Wrfsbase r | Wrgsbase r ->
      [ Reg.to_int r ]
  | Load { dst; _ } -> [ Reg.to_int dst ]
  | Pop r -> [ Reg.to_int r; sp ]
  | Push _ -> [ sp ]
  | Ret | Ret_imm _ -> [ sp ]
  | Call _ | Call_reg _ | Call_mem _ -> [ sp ]
  | Cmp _ | Store _ | Jmp _ | Jcc _ | Jmp_reg _ | Jmp_mem _ | Nop
  | Syscall_gate | Hlt | Bndcl _ | Bndcu _ | Bndmk _ | Bndmov _
  | Cfi_label _ | Eexit | Emodpe | Eaccept | Xrstor | Vscatter _ ->
      []

let item_writes (item : Asm.item) =
  match item with
  | Ins i -> insn_writes i
  | Lea_code (r, _) -> [ Reg.to_int r ]
  | Cfi_guard _ -> [ Reg.to_int Reg.scratch ]
  | Call_l _ -> [ sp ]
  | Label _ | Jmp_l _ | Jcc_l _ | Mem_guard _ | Cfi_label_here -> []

(* --- dataflow over the item array -------------------------------------- *)

type flow = {
  next : bool;          (* falls through to the next item *)
  next_top : bool;      (* ... but with state reset (returns from a call) *)
  targets : string list; (* direct label successors *)
}

let flow_of (item : Asm.item) =
  match item with
  | Jmp_l l -> { next = false; next_top = false; targets = [ l ] }
  | Jcc_l (_, l) -> { next = true; next_top = false; targets = [ l ] }
  | Call_l _ -> { next = true; next_top = true; targets = [] }
  | Ins (Jmp _ | Jmp_reg _ | Jmp_mem _ | Ret | Ret_imm _ | Hlt) ->
      { next = false; next_top = false; targets = [] }
  | Ins (Call _ | Call_reg _ | Call_mem _) ->
      { next = true; next_top = true; targets = [] }
  | _ -> { next = true; next_top = false; targets = [] }

let transfer (item : Asm.item) s =
  match item with
  | Label _ -> s
  | Cfi_label_here -> top
  | Mem_guard m -> (
      match simple_sib m with
      | Some (base, disp) -> set_anchor s base disp
      | None -> s)
  | Cfi_guard _ -> kill_reg s (Reg.to_int Reg.scratch)
  | Jmp_l _ | Jcc_l _ -> s
  | Call_l _ -> push_effect s (* the return-address push *)
  | Lea_code (r, _) -> kill_reg s (Reg.to_int r)
  | Ins i -> (
      match i with
      | Load { dst; src; size } ->
          let s = access s src ~size in
          kill_reg s (Reg.to_int dst)
      | Store { dst; size; _ } -> access s dst ~size
      | Push _ -> push_effect s
      | Pop r -> pop_effect s (Some r)
      | Call _ | Call_reg _ | Call_mem _ -> push_effect s
      | Ret | Ret_imm _ -> pop_effect s None
      | Mov_reg (d, src) -> copy_reg s (Reg.to_int d) (Reg.to_int src)
      | Mov_imm (r, _) -> kill_reg s (Reg.to_int r)
      | Alu (Add, r, O_imm c) when Int64.abs c < Int64.of_int shift_limit ->
          shift_reg s (Reg.to_int r) (Int64.to_int c)
      | Alu (Sub, r, O_imm c) when Int64.abs c < Int64.of_int shift_limit ->
          shift_reg s (Reg.to_int r) (- Int64.to_int c)
      | Alu (_, r, _) -> kill_reg s (Reg.to_int r)
      | Lea (r, _) -> kill_reg s (Reg.to_int r)
      | Syscall_gate -> kill_reg s (Reg.to_int Codegen_regs.result)
      | Wrfsbase r | Wrgsbase r -> kill_reg s (Reg.to_int r)
      | Cmp _ | Nop | Jmp _ | Jcc _ | Jmp_reg _ | Jmp_mem _ | Hlt
      | Bndcl _ | Bndcu _ | Bndmk _ | Bndmov _ | Cfi_label _ | Eexit
      | Emodpe | Eaccept | Xrstor | Vscatter _ ->
          s)

let is_entry_label l =
  String.length l > 2 && (String.sub l 0 2 = "f_" || l = "_start")

let analyze (items : Asm.item array) =
  let n = Array.length items in
  let label_idx = Hashtbl.create 64 in
  Array.iteri
    (fun i item ->
      match item with Asm.Label l -> Hashtbl.replace label_idx l i | _ -> ())
    items;
  let in_state : state option array = Array.make n None in
  let work = Queue.create () in
  let join i s =
    let s' =
      match in_state.(i) with None -> Some s | Some old -> Some (meet old s)
    in
    if s' <> in_state.(i) then begin
      in_state.(i) <- s';
      Queue.push i work
    end
  in
  Array.iteri
    (fun i item ->
      match item with
      | Asm.Cfi_label_here -> join i top
      | Asm.Label l when is_entry_label l -> join i top
      | _ -> if i = 0 then join i top)
    items;
  while not (Queue.is_empty work) do
    let i = Queue.pop work in
    match in_state.(i) with
    | None -> ()
    | Some s ->
        let out = transfer items.(i) s in
        let { next; next_top; targets } = flow_of items.(i) in
        if next && i + 1 < n then join (i + 1) (if next_top then top else out);
        List.iter
          (fun l ->
            match Hashtbl.find_opt label_idx l with
            | Some j -> join j out
            | None -> ())
          targets
    done;
  in_state

(* --- pass 2: loop check hoisting ---------------------------------------- *)

(* Trace an operand (base, disp) backwards through the straight-line
   prefix to express it in terms of registers live at the loop head. *)
let trace_back prefix_items base disp =
  let rec go items base disp =
    match items with
    | [] -> Some (base, disp)
    | item :: rest -> (
        match item with
        | Asm.Ins (Mov_reg (d, src)) when Reg.to_int d = base ->
            go rest (Reg.to_int src) disp
        | Asm.Ins (Alu (Add, r, O_imm c))
          when Reg.to_int r = base && Int64.abs c < Int64.of_int shift_limit ->
            go rest base (disp + Int64.to_int c)
        | Asm.Ins (Alu (Sub, r, O_imm c))
          when Reg.to_int r = base && Int64.abs c < Int64.of_int shift_limit ->
            go rest base (disp - Int64.to_int c)
        | _ -> if List.mem base (item_writes item) then None else go rest base disp)
  in
  (* prefix_items are in program order; walk backwards *)
  go (List.rev prefix_items) base disp

let is_block_end (item : Asm.item) =
  match item with
  | Label _ | Jmp_l _ | Jcc_l _ | Call_l _ | Cfi_label_here | Cfi_guard _ -> true
  | Ins (Jmp _ | Jcc _ | Call _ | Jmp_reg _ | Call_reg _ | Jmp_mem _
        | Call_mem _ | Ret | Ret_imm _ | Syscall_gate | Hlt) ->
      true
  | Ins _ | Mem_guard _ | Lea_code _ -> false

(* Find loops (a backward branch to a label) and compute the guards to
   insert before each loop-head label. *)
let hoist_candidates (items : Asm.item array) =
  let n = Array.length items in
  let label_idx = Hashtbl.create 64 in
  Array.iteri
    (fun i item ->
      match item with Asm.Label l -> Hashtbl.replace label_idx l i | _ -> ())
    items;
  let to_insert = Hashtbl.create 8 in (* head index -> guard list *)
  for j = 0 to n - 1 do
    let backedge_label =
      match items.(j) with
      | Asm.Jmp_l l | Asm.Jcc_l (_, l) -> (
          match Hashtbl.find_opt label_idx l with
          | Some h when h < j -> Some h
          | _ -> None)
      | _ -> None
    in
    match backedge_label with
    | None -> ()
    | Some h ->
        (* straight-line prefix of the loop body *)
        let rec scan i prefix =
          if i >= n || is_block_end items.(i) then ()
          else begin
            (match items.(i) with
            | Asm.Mem_guard m -> (
                match simple_sib m with
                | Some (base, disp) -> (
                    match trace_back (List.rev prefix) base disp with
                    | Some (root, disp0) ->
                        let g =
                          Asm.Mem_guard
                            (Sib
                               { base = Reg.of_int root; index = None;
                                 scale = 1; disp = disp0 })
                        in
                        let old =
                          Option.value (Hashtbl.find_opt to_insert h) ~default:[]
                        in
                        if not (List.mem g old) then
                          Hashtbl.replace to_insert h (g :: old)
                    | None -> ())
                | None -> ())
            | _ -> ());
            scan (i + 1) (items.(i) :: prefix)
          end
        in
        scan (h + 1) []
  done;
  to_insert

let insert_hoists items =
  let arr = Array.of_list items in
  let to_insert = hoist_candidates arr in
  if Hashtbl.length to_insert = 0 then items
  else
    List.concat
      (List.mapi
         (fun i item ->
           match Hashtbl.find_opt to_insert i with
           | Some guards -> List.rev_append guards [ item ]
           | None -> [ item ])
         items)

(* --- pass 3: redundant check elimination -------------------------------- *)

let delete_redundant items =
  let arr = Array.of_list items in
  let states = analyze arr in
  List.filteri
    (fun i item ->
      match item with
      | Asm.Mem_guard m -> (
          match (simple_sib m, states.(i)) with
          | Some (base, disp), Some s -> not (covers s base disp (disp + 7))
          | _ -> true)
      | _ -> true)
    items

let run items =
  let items = insert_hoists items in
  delete_redundant items

(* Exposed for tests and stats. *)
let count_guards items =
  List.length (List.filter (function Asm.Mem_guard _ -> true | _ -> false) items)
