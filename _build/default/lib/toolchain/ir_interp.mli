(** Reference interpreter for Occlang: executes the AST over a data
    region laid out identically to the real binary, so the observable
    behaviour (syscall trace, output, exit value) of interpreter and
    machine must match — the oracle for the differential test suite. *)

exception Interp_fault of string

val func_id_base : int64
(** Function "addresses" live in a distinct id space. *)

val run :
  ?fuel:int ->
  ?args:string list ->
  syscall:(int -> int64 array -> Bytes.t -> int64) ->
  Ast.program ->
  int64
(** Run [main]; the handler receives (number, args, data region) per
    system call. @raise Interp_fault on memory errors or fuel
    exhaustion. *)

exception Exited of int64

val run_pure : ?fuel:int -> ?args:string list -> Ast.program -> int64 * string
(** A standard harness supporting exit/write/brk; returns (exit value or
    main's result, captured stdout). *)
