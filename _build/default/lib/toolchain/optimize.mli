(** The range-analysis guard optimizer of §4.3: redundant check
    elimination and loop check hoisting over the assembly items, using a
    fact/alias dataflow ("base+d lies in D or a guard region for all d in
    [lo, hi]"). Untrusted: the verifier independently re-derives safety
    over the final bytes, so a bug here can cost performance or
    verifiability, never safety. *)

val run : Asm.item list -> Asm.item list
(** Hoist loop guards into preheaders, then delete redundant guards. *)

val count_guards : Asm.item list -> int

val insert_hoists : Asm.item list -> Asm.item list
(** The hoisting pass alone (exposed for tests/ablation). *)

val delete_redundant : Asm.item list -> Asm.item list
(** The elimination pass alone. *)
