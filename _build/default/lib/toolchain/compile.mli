(** The compiler driver: Occlang → instrumented OASM → OELF binary.
    This is the whole "Occlum toolchain" of Figure 1b; its output still
    has to pass the independent verifier before the LibOS loads it. *)

type stats = {
  items : int;               (** assembly items after all passes *)
  guards_before_opt : int;   (** mem_guards emitted by naive instrumentation *)
  guards_after_opt : int;    (** mem_guards surviving the §4.3 optimizer *)
}

val to_items :
  ?config:Codegen.config -> Ast.program -> Layout.t * Asm.item list * stats
(** Compile to assembly items (after optimization if enabled). *)

val compile :
  ?config:Codegen.config -> Ast.program -> Occlum_oelf.Oelf.t * stats
(** Compile and link. The result is unsigned; see
    {!Occlum_verifier.Verify.verify_and_sign}.
    @raise Ast.Ill_formed on malformed programs.
    @raise Codegen.Codegen_error on code-generation limits. *)

val compile_exn : ?config:Codegen.config -> Ast.program -> Occlum_oelf.Oelf.t

val listing : ?config:Codegen.config -> Ast.program -> string
(** The generated assembly, one item per line. *)
