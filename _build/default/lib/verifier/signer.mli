(** Signing of verified binaries: the verifier MACs accepted binaries and
    the LibOS loader checks the tag before loading (§5 excludes the
    toolchain — but not the verifier's signature — from the TCB). *)

val sign : Occlum_oelf.Oelf.t -> Occlum_oelf.Oelf.t
val check : Occlum_oelf.Oelf.t -> bool
