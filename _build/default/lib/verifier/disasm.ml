(* Stage 1: complete disassembly (Algorithm 1).

   Roots are every byte-level occurrence of the cfi_label magic — the
   LibOS only starts or redirects execution at cfi_labels, and (per the
   control-transfer policy verified later) indirect transfers can only
   target cfi_labels, so walking from every root and following every
   direct transfer covers every reachable instruction. Any decode
   failure, out-of-range walk, or overlap between differently-aligned
   instructions aborts — so a binary that passes has a single, complete,
   unambiguous disassembly. *)

open Occlum_isa

type error = { addr : int; reason : string }

exception Reject of error

let reject addr fmt =
  Printf.ksprintf (fun reason -> raise (Reject { addr; reason })) fmt

(* Decode one unit at [pos], greedily merging guard sequences. *)
let decode_unit code pos =
  let limit = Bytes.length code in
  let dec p =
    match Codec.decode code ~pos:p ~limit with
    | Ok (i, len) -> Some (i, len)
    | Error _ -> None
  in
  match dec pos with
  | None -> None
  | Some (i1, l1) -> (
      match i1 with
      | Cfi_label id -> Some (Unit_kind.U_cfi_label id, l1)
      | Bndcl (b1, Ea_mem m1) when Reg.bnd_to_int b1 = 0 -> (
          match dec (pos + l1) with
          | Some (Bndcu (b2, Ea_mem m2), l2)
            when Reg.bnd_to_int b2 = 0 && m1 = m2 ->
              Some (Unit_kind.U_mem_guard m1, l1 + l2)
          | _ -> Some (Unit_kind.U_insn i1, l1))
      | Load { dst; src = Sib { base; index = None; scale = 1; disp = 0 }; size = 8 }
        when dst = Reg.scratch -> (
          match dec (pos + l1) with
          | Some (Bndcl (b1, Ea_reg r1), l2)
            when Reg.bnd_to_int b1 = 1 && r1 = Reg.scratch -> (
              match dec (pos + l1 + l2) with
              | Some (Bndcu (b2, Ea_reg r2), l3)
                when Reg.bnd_to_int b2 = 1 && r2 = Reg.scratch ->
                  Some (Unit_kind.U_cfi_guard base, l1 + l2 + l3)
              | _ -> Some (Unit_kind.U_insn i1, l1))
          | _ -> Some (Unit_kind.U_insn i1, l1))
      | _ -> Some (Unit_kind.U_insn i1, l1))

let is_walk_end (u : Unit_kind.t) =
  match u with
  | U_insn (Jmp _ | Jmp_reg _ | Jmp_mem _ | Ret | Ret_imm _ | Hlt | Eexit) -> true
  | U_insn _ | U_mem_guard _ | U_cfi_guard _ | U_cfi_label _ -> false

(* The result: all reachable units, address-indexed and address-sorted. *)
type t = {
  units : (int, Unit_kind.unit_at) Hashtbl.t;
  sorted : Unit_kind.unit_at array;
  labels : int list; (* addresses of cfi_labels, ascending *)
}

let run (code : Bytes.t) =
  let len = Bytes.length code in
  let units : (int, Unit_kind.unit_at) Hashtbl.t = Hashtbl.create 1024 in
  let owner = Array.make len (-1) in
  (* line 2: byte-by-byte scan for cfi_label roots *)
  let roots = Occlum_util.Bytes_util.find_all ~needle:Codec.cfi_magic code in
  let work = Queue.create () in
  List.iter (fun a -> Queue.push a work) roots;
  while not (Queue.is_empty work) do
    let start = Queue.pop work in
    let rec walk addr =
      if addr < 0 || addr >= len then
        reject addr "walk left the code segment"
      else
        match Hashtbl.find_opt units addr with
        | Some _ -> () (* already disassembled from here: consistent *)
        | None -> (
            match decode_unit code addr with
            | None -> reject addr "invalid instruction"
            | Some (kind, ulen) ->
                if addr + ulen > len then reject addr "instruction past end of code";
                for b = addr to addr + ulen - 1 do
                  if owner.(b) <> -1 && owner.(b) <> addr then
                    reject addr "overlaps instruction at 0x%x" owner.(b)
                done;
                for b = addr to addr + ulen - 1 do
                  owner.(b) <- addr
                done;
                Hashtbl.replace units addr { Unit_kind.addr; len = ulen; kind };
                (match kind with
                | U_insn i -> (
                    match Insn.control_transfer_of i with
                    | Ct_direct { rel; _ } -> Queue.push (addr + ulen + rel) work
                    | Ct_register _ | Ct_memory | Ct_return | Ct_none -> ())
                | U_mem_guard _ | U_cfi_guard _ | U_cfi_label _ -> ());
                if not (is_walk_end kind) then walk (addr + ulen))
    in
    walk start
  done;
  (* a unit that exists at an address another unit owns mid-byte would
     have been rejected above; build the sorted view *)
  let sorted =
    Hashtbl.fold (fun _ u acc -> u :: acc) units []
    |> List.sort (fun a b -> compare a.Unit_kind.addr b.Unit_kind.addr)
    |> Array.of_list
  in
  let labels =
    Array.to_list sorted
    |> List.filter_map (fun (u : Unit_kind.unit_at) ->
           match u.kind with U_cfi_label _ -> Some u.addr | _ -> None)
  in
  { units; sorted; labels }

let find t addr = Hashtbl.find_opt t.units addr

(* The unit that ends exactly where [addr] begins — the "immediately
   preceding instruction" used by the Stage-3 adjacency check. *)
let preceding t (u : Unit_kind.unit_at) =
  Array.find_opt
    (fun (p : Unit_kind.unit_at) -> p.addr + p.len = u.addr)
    t.sorted

let listing t =
  Array.to_list t.sorted
  |> List.map (fun (u : Unit_kind.unit_at) ->
         Printf.sprintf "%6x: %s" u.addr (Unit_kind.to_string u.kind))
  |> String.concat "\n"
