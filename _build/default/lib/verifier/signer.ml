(* Signing of verified binaries. The verifier runs outside the enclave
   (it is not runtime TCB — §5), so the LibOS must be able to recognize
   binaries the verifier accepted: the verifier MACs the binary and the
   loader checks the tag before loading. The key stands in for a
   provisioning secret shared between verifier and enclave. *)

let key = Occlum_util.Sha256.digest "occlum-sim-verifier-signing-key"

let sign (oelf : Occlum_oelf.Oelf.t) =
  {
    oelf with
    signature =
      Some (Occlum_util.Hmac.mac ~key (Occlum_oelf.Oelf.signing_payload oelf));
  }

let check (oelf : Occlum_oelf.Oelf.t) =
  match oelf.signature with
  | None -> false
  | Some tag ->
      Occlum_util.Hmac.verify ~key ~tag (Occlum_oelf.Oelf.signing_payload oelf)
