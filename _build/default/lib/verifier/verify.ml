(* The Occlum verifier (§5): an independent static checker that decides
   whether an ELF binary complies with MMDSFI's two security policies —
   memory accesses confined to [D.begin, D.end), control transfers
   confined to [C.begin, C.end) — without trusting the toolchain.

   Stage 1  complete disassembly        ({!Disasm}, Algorithm 1)
   Stage 2  instruction-set verification (no SGX/MPX-modifying/misc ops)
   Stage 3  control-transfer verification (Figure 3)
   Stage 4  memory-access verification   (Figure 4 + range analysis)

   Only a binary passing all four stages is signed ({!Signer}) and will
   be accepted by the LibOS loader. *)

open Occlum_isa
module U = Unit_kind

type rejection = { stage : int; addr : int; reason : string }

let rejection_to_string r =
  Printf.sprintf "stage %d @0x%x: %s" r.stage r.addr r.reason

exception Rejected of rejection list

let stage1 (oelf : Occlum_oelf.Oelf.t) =
  match Disasm.run oelf.code with
  | d -> d
  | exception Disasm.Reject { addr; reason } ->
      raise (Rejected [ { stage = 1; addr; reason } ])

let stage2 (d : Disasm.t) =
  let bad = ref [] in
  Array.iter
    (fun (u : U.unit_at) ->
      (if u.addr < Occlum_oelf.Oelf.trampoline_reserved then
         bad :=
           { stage = 2; addr = u.addr; reason = "code in loader-reserved area" }
           :: !bad);
      match u.kind with
      | U.U_insn i -> (
          match Insn.danger_of i with
          | Some danger ->
              let what =
                match danger with
                | Sgx_instruction -> "SGX instruction"
                | Mpx_modification -> "MPX bound modification"
                | Misc_privileged -> "privileged instruction"
                | Libos_gate -> "syscall gate outside the loader trampoline"
              in
              bad :=
                { stage = 2; addr = u.addr;
                  reason = what ^ ": " ^ Insn.to_string i }
                :: !bad
          | None -> ())
      | U.U_mem_guard _ | U.U_cfi_guard _ | U.U_cfi_label _ -> ())
    d.sorted;
  if !bad <> [] then raise (Rejected (List.rev !bad))

let stage3 (d : Disasm.t) =
  let bad = ref [] in
  let reject addr reason = bad := { stage = 3; addr; reason } :: !bad in
  Array.iteri
    (fun idx (u : U.unit_at) ->
      match u.kind with
      | U.U_insn i -> (
          match Insn.control_transfer_of i with
          | Ct_direct { rel; _ } -> (
              let target = u.addr + u.len + rel in
              match Disasm.find d target with
              | None -> reject u.addr "direct transfer into unmapped code"
              | Some t -> (
                  match t.kind with
                  | U.U_insn ti -> (
                      match Insn.control_transfer_of ti with
                      | Ct_register _ ->
                          reject u.addr
                            "direct transfer targets a register-based \
                             indirect transfer (would skip its cfi_guard)"
                      | Ct_direct _ | Ct_memory | Ct_return | Ct_none -> ())
                  | U.U_mem_guard _ | U.U_cfi_guard _ | U.U_cfi_label _ -> ()))
          | Ct_register r -> (
              (* must be immediately preceded by a cfi_guard on the same
                 register (Figure 3, row 2) *)
              let prev =
                if idx = 0 then None
                else
                  let p = d.sorted.(idx - 1) in
                  if p.addr + p.len = u.addr then Some p else None
              in
              match prev with
              | Some { kind = U.U_cfi_guard r'; _ } when r' = r -> ()
              | _ ->
                  reject u.addr
                    (Printf.sprintf
                       "indirect transfer through %s not guarded by a \
                        cfi_guard" (Reg.name r)))
          | Ct_memory ->
              reject u.addr "memory-based indirect transfer (Figure 3: reject)"
          | Ct_return ->
              reject u.addr "return-based indirect transfer (Figure 3: reject)"
          | Ct_none -> ())
      | U.U_mem_guard _ | U.U_cfi_guard _ | U.U_cfi_label _ -> ())
    d.sorted;
  if !bad <> [] then raise (Rejected (List.rev !bad))

(* --- Stage 4 ------------------------------------------------------------ *)

type succ = Next | Next_top | Target of int

let succs_of (u : U.unit_at) =
  match u.kind with
  | U.U_insn i -> (
      match i with
      | Jmp rel -> [ Target (u.addr + u.len + rel) ]
      | Jcc (_, rel) -> [ Next; Target (u.addr + u.len + rel) ]
      | Call _ | Call_reg _ | Call_mem _ -> [ Next_top ]
      | Jmp_reg _ | Jmp_mem _ | Ret | Ret_imm _ | Hlt | Eexit -> []
      | _ -> [ Next ])
  | U.U_mem_guard _ | U.U_cfi_guard _ | U.U_cfi_label _ -> [ Next ]

let transfer (u : U.unit_at) (s : Range.state) =
  let open Range in
  match u.kind with
  | U.U_cfi_label _ -> top
  | U.U_mem_guard m -> (
      match simple_sib m with
      | Some (base, disp) -> set_anchor s base disp
      | None -> s)
  | U.U_cfi_guard _ -> kill_reg s (Reg.to_int Reg.scratch)
  | U.U_insn i -> (
      match i with
      | Load { dst; src; size } ->
          let s =
            match simple_sib src with
            | Some (base, disp) when covers s base disp (disp + size - 1) ->
                set_anchor s base disp
            | _ -> s
          in
          kill_reg s (Reg.to_int dst)
      | Store { dst; size; _ } -> (
          match simple_sib dst with
          | Some (base, disp) when covers s base disp (disp + size - 1) ->
              set_anchor s base disp
          | _ -> s)
      | Push _ | Call _ | Call_reg _ | Call_mem _ ->
          let s = if covers s sp (-8) (-1) then set_anchor s sp (-8) else s in
          shift_reg s sp (-8)
      | Pop r ->
          let s = if covers s sp 0 7 then set_anchor s sp 0 else s in
          let s = shift_reg s sp 8 in
          kill_reg s (Reg.to_int r)
      | Ret | Ret_imm _ ->
          let s = shift_reg s sp 8 in
          s
      | Mov_reg (d, src) -> copy_reg s (Reg.to_int d) (Reg.to_int src)
      | Mov_imm (r, _) -> kill_reg s (Reg.to_int r)
      | Alu (Add, r, O_imm c) when Int64.abs c < Int64.of_int shift_limit ->
          shift_reg s (Reg.to_int r) (Int64.to_int c)
      | Alu (Sub, r, O_imm c) when Int64.abs c < Int64.of_int shift_limit ->
          shift_reg s (Reg.to_int r) (- Int64.to_int c)
      | Alu (_, r, _) -> kill_reg s (Reg.to_int r)
      | Lea (r, _) -> kill_reg s (Reg.to_int r)
      | Wrfsbase r | Wrgsbase r -> kill_reg s (Reg.to_int r)
      | Vscatter _ | Syscall_gate -> s (* rejected elsewhere *)
      | Cmp _ | Nop | Jmp _ | Jcc _ | Jmp_reg _ | Jmp_mem _ | Hlt
      | Bndcl _ | Bndcu _ | Bndmk _ | Bndmov _ | Cfi_label _ | Eexit
      | Emodpe | Eaccept | Xrstor ->
          s)

let stage4 (oelf : Occlum_oelf.Oelf.t) (d : Disasm.t) =
  let n = Array.length d.sorted in
  let index_of = Hashtbl.create (2 * n) in
  Array.iteri (fun i (u : U.unit_at) -> Hashtbl.replace index_of u.addr i) d.sorted;
  let in_state : Range.state option array = Array.make n None in
  let work = Queue.create () in
  let join i s =
    let s' =
      match in_state.(i) with
      | None -> Some s
      | Some old -> Some (Range.meet old s)
    in
    if s' <> in_state.(i) then begin
      in_state.(i) <- s';
      Queue.push i work
    end
  in
  (* seeds: every cfi_label (indirect transfers may land there) and the
     program entry *)
  Array.iteri
    (fun i (u : U.unit_at) ->
      match u.kind with U.U_cfi_label _ -> join i Range.top | _ -> ())
    d.sorted;
  (match Hashtbl.find_opt index_of oelf.entry with
  | Some i -> join i Range.top
  | None -> ());
  while not (Queue.is_empty work) do
    let i = Queue.pop work in
    match in_state.(i) with
    | None -> ()
    | Some s ->
        let u = d.sorted.(i) in
        let out = transfer u s in
        List.iter
          (fun succ ->
            match succ with
            | Next ->
                if i + 1 < n && d.sorted.(i + 1).addr = u.addr + u.len then
                  join (i + 1) out
            | Next_top ->
                if i + 1 < n && d.sorted.(i + 1).addr = u.addr + u.len then
                  join (i + 1) Range.top
            | Target a -> (
                match Hashtbl.find_opt index_of a with
                | Some j -> join j out
                | None -> ()))
          (succs_of u)
  done;
  (* verification pass over the fixpoint *)
  let bad = ref [] in
  let reject addr reason = bad := { stage = 4; addr; reason } :: !bad in
  let d_begin = Occlum_oelf.Oelf.d_begin_rel oelf in
  let d_end = d_begin + oelf.data_region_size in
  let guarded_by i (operand : Insn.mem) =
    (* adjacency: the immediately preceding unit is a mem_guard with an
       identical operand *)
    i > 0
    &&
    let p = d.sorted.(i - 1) and u = d.sorted.(i) in
    p.addr + p.len = u.addr
    && match p.kind with U.U_mem_guard m -> m = operand | _ -> false
  in
  let sp_mem disp : Insn.mem =
    Sib { base = Reg.sp; index = None; scale = 1; disp }
  in
  Array.iteri
    (fun i (u : U.unit_at) ->
      match in_state.(i) with
      | None ->
          (* in R but never reached by the CFG seeds: contradicts the
             reachability argument of Stage 1; reject conservatively *)
          reject u.addr "disassembled unit unreachable in the verified CFG"
      | Some s -> (
          let check_sp_access ~push_like operand_disp =
            let lo, hi = if push_like then (-8, -1) else (0, 7) in
            if
              Range.covers s Range.sp lo hi
              || guarded_by i (sp_mem operand_disp)
            then ()
            else
              reject u.addr
                (if push_like then "implicit stack store not provably in D"
                 else "implicit stack load not provably in D")
          in
          match u.kind with
          | U.U_mem_guard _ | U.U_cfi_guard _ | U.U_cfi_label _ -> ()
          | U.U_insn insn -> (
              (match insn with
              | Call _ | Call_reg _ -> check_sp_access ~push_like:true (-8)
              | _ -> ());
              match Insn.mem_access_of insn with
              | Ma_none -> ()
              | Ma_implicit { push } ->
                  check_sp_access ~push_like:push (if push then -8 else 0)
              | Ma_sib { base; index; scale; disp; size; is_store = _ } -> (
                  let operand : Insn.mem =
                    Sib { base; index; scale; disp }
                  in
                  if guarded_by i operand then ()
                  else
                    match index with
                    | None ->
                        if
                          Range.covers s (Reg.to_int base) disp
                            (disp + size - 1)
                        then ()
                        else
                          reject u.addr
                            (Printf.sprintf
                               "memory access %s not provably within D"
                               (Insn.mem_to_string operand))
                    | Some _ ->
                        reject u.addr
                          "indexed access without an adjacent mem_guard"
                  )
              | Ma_rip_rel { disp; size; is_store = _ } ->
                  let t = u.addr + u.len + disp in
                  if t >= d_begin && t + size <= d_end then ()
                  else
                    reject u.addr
                      (Printf.sprintf
                         "rip-relative access to 0x%x outside D [0x%x,0x%x)"
                         t d_begin d_end)
              | Ma_direct_offset ->
                  reject u.addr "direct memory offset (Figure 4: reject)"
              | Ma_vector_sib ->
                  reject u.addr "vector SIB (Figure 4: reject)")))
    d.sorted;
  if !bad <> [] then raise (Rejected (List.rev !bad))

(* --- top level ----------------------------------------------------------- *)

let verify (oelf : Occlum_oelf.Oelf.t) =
  try
    let d = stage1 oelf in
    (* the entry point must itself be a cfi_label: the LibOS starts
       execution only at labels *)
    (match Disasm.find d oelf.entry with
    | Some { kind = U.U_cfi_label _; _ } -> ()
    | _ ->
        raise
          (Rejected
             [ { stage = 1; addr = oelf.entry;
                 reason = "entry point is not a cfi_label" } ]));
    stage2 d;
    stage3 d;
    stage4 oelf d;
    Ok d
  with Rejected rs -> Error rs

(* Verify and, on success, sign: the artifact the LibOS loader accepts. *)
let verify_and_sign oelf =
  match verify oelf with
  | Ok _ -> Ok (Signer.sign oelf)
  | Error rs -> Error rs
