(* Stage 4: cfi_label-aware range analysis over the disassembled units
   (§4.3, §5 Stage 4), independent from — and stronger than — the
   toolchain's optimizer, which this analysis must be able to re-prove.

   Facts: "base register + d is inside D∪G for all d in [lo, hi]".
   Created by mem_guard pseudo-instructions (which prove the checked
   address is in D, so ±(G-1) around it is in D∪G), refreshed by verified
   accesses (a verified access that executes without faulting must have
   landed in D), shifted by constant add/sub, copied by register moves,
   and destroyed by any other write. cfi_labels reset the state to top
   because any indirect transfer may land on them. Calls reset the state
   of their return site (the callee may clobber anything). *)

open Occlum_isa

let slack = Occlum_oelf.Oelf.guard_size - 1
let shift_limit = 1 lsl 20
let clamp_bound = 131071

type state = {
  facts : (int * (int * int)) list;
  aliases : (int * int * int) list; (* (d, s, k): d = s + k *)
}

let top = { facts = []; aliases = [] }

let normalize s =
  { facts = List.sort_uniq compare s.facts;
    aliases = List.sort_uniq compare s.aliases }

let meet a b =
  let facts =
    List.filter_map
      (fun (r, (lo, hi)) ->
        match List.assoc_opt r b.facts with
        | Some (lo', hi') ->
            let lo = max lo lo' and hi = min hi hi' in
            if lo <= hi then Some (r, (lo, hi)) else None
        | None -> None)
      a.facts
  in
  let aliases = List.filter (fun al -> List.mem al b.aliases) a.aliases in
  normalize { facts; aliases }

let kill_reg s r =
  { facts = List.remove_assoc r s.facts;
    aliases = List.filter (fun (d, src, _) -> d <> r && src <> r) s.aliases }

let shift_reg s r c =
  if abs c > shift_limit then kill_reg s r
  else
    { facts =
        List.filter_map
          (fun (r', (lo, hi)) ->
            if r' = r then
              let lo = lo - c and hi = hi - c in
              if hi < -clamp_bound || lo > clamp_bound then None
              else Some (r', (max lo (-clamp_bound), min hi clamp_bound))
            else Some (r', (lo, hi)))
          s.facts;
      aliases =
        List.map
          (fun (d, src, k) ->
            if d = r then (d, src, k + c)
            else if src = r then (d, src, k - c)
            else (d, src, k))
          s.aliases }

let copy_reg s d src =
  if d = src then s
  else
    let s = kill_reg s d in
    let facts =
      match List.assoc_opt src s.facts with
      | Some intv -> (d, intv) :: s.facts
      | None -> s.facts
    in
    { facts; aliases = (d, src, 0) :: s.aliases }

let set_anchor s base anchor =
  let set facts r a =
    let fresh = (a - slack, a + slack) in
    let combined =
      match List.assoc_opt r facts with
      | Some (lo, hi) when lo <= snd fresh + 1 && fst fresh <= hi + 1 ->
          (min lo (fst fresh), max hi (snd fresh))
      | _ -> fresh
    in
    let lo = max (fst combined) (-clamp_bound)
    and hi = min (snd combined) clamp_bound in
    if lo <= hi then (r, (lo, hi)) :: List.remove_assoc r facts
    else List.remove_assoc r facts
  in
  let facts = set s.facts base anchor in
  let facts =
    List.fold_left
      (fun facts (d, src, k) ->
        if d = base then set facts src (anchor + k)
        else if src = base then set facts d (anchor - k)
        else facts)
      facts s.aliases
  in
  { s with facts }

let covers s base lo hi =
  match List.assoc_opt base s.facts with
  | Some (flo, fhi) -> flo <= lo && hi <= fhi
  | None -> false

let simple_sib (m : Insn.mem) =
  match m with
  | Sib { base; index = None; scale = _; disp } -> Some (Reg.to_int base, disp)
  | Sib _ | Rip_rel _ | Abs _ -> None

let sp = Reg.to_int Reg.sp
