(** Verification units: a machine instruction or one of the MMDSFI
    pseudo-instructions of Figure 2b, which Stage 1 merges and treats as
    indivisible (§4.2: "some instruction sequences must be treated as a
    whole"). *)

type t =
  | U_insn of Occlum_isa.Insn.t
  | U_mem_guard of Occlum_isa.Insn.mem  (** bndcl+bndcu %bnd0, same operand *)
  | U_cfi_guard of Occlum_isa.Reg.t     (** load+bndcl+bndcu %bnd1 *)
  | U_cfi_label of int32

type unit_at = { addr : int; len : int; kind : t }

val to_string : t -> string
