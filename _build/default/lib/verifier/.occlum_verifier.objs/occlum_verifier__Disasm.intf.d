lib/verifier/disasm.mli: Bytes Hashtbl Unit_kind
