lib/verifier/signer.ml: Occlum_oelf Occlum_util
