lib/verifier/range.ml: Insn List Occlum_isa Occlum_oelf Reg
