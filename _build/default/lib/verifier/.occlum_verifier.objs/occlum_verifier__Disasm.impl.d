lib/verifier/disasm.ml: Array Bytes Codec Hashtbl Insn List Occlum_isa Occlum_util Printf Queue Reg String Unit_kind
