lib/verifier/verify.mli: Disasm Occlum_oelf
