lib/verifier/unit_kind.ml: Insn Occlum_isa Printf Reg
