lib/verifier/signer.mli: Occlum_oelf
