lib/verifier/unit_kind.mli: Occlum_isa
