lib/verifier/verify.ml: Array Disasm Hashtbl Insn Int64 List Occlum_isa Occlum_oelf Printf Queue Range Reg Signer Unit_kind
