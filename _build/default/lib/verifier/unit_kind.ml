(* Verification units: either a single machine instruction or one of the
   MMDSFI pseudo-instructions of Figure 2b, recognized by the Stage-1
   disassembler and treated as indivisible (§4.2: "some instruction
   sequences must be treated as a whole"). *)

open Occlum_isa

type t =
  | U_insn of Insn.t
  | U_mem_guard of Insn.mem (* bndcl+bndcu %bnd0 on the same operand *)
  | U_cfi_guard of Reg.t    (* load+bndcl+bndcu %bnd1 (Fig. 2b) *)
  | U_cfi_label of int32

type unit_at = { addr : int; len : int; kind : t }

let to_string = function
  | U_insn i -> Insn.to_string i
  | U_mem_guard m -> "mem_guard " ^ Insn.mem_to_string m
  | U_cfi_guard r -> "cfi_guard " ^ Reg.name r
  | U_cfi_label id -> Printf.sprintf "cfi_label <%ld>" id
