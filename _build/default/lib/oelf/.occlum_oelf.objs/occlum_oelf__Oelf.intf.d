lib/oelf/oelf.mli: Bytes
