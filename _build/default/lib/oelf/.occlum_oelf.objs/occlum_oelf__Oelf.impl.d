lib/oelf/oelf.ml: Buffer Bytes Int32 List Occlum_util Printf String
