lib/sgx/enclave.ml: Bytes Cpu Epc Mem Occlum_machine Occlum_util Printf
