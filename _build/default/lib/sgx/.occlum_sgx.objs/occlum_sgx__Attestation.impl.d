lib/sgx/attestation.ml: Enclave Occlum_util Printf String
