lib/sgx/epc.ml: Occlum_machine
