lib/sgx/attestation.mli: Enclave
