lib/sgx/epc.mli:
