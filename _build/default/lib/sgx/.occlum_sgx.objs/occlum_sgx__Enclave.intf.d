lib/sgx/enclave.mli: Bytes Epc Occlum_machine
