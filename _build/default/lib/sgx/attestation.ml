(* Local attestation between two enclaves on the same platform, modelled
   on the EREPORT/EGETKEY flow. An EIP creation (Graphene-style) must do
   this handshake with its parent before the encrypted process state can
   be transferred (§3.2) — part of why EIP process creation is slow. *)

(* The platform key never leaves the CPU on real hardware; here it is a
   module-private constant standing in for the fused key. *)
let platform_key = Occlum_util.Sha256.digest "occlum-sim-platform-fuse-key"

type report = { body : string; tag : string }

(* EREPORT: a MAC over the enclave's measurement plus user data, keyed so
   only enclaves on the same platform can verify it. *)
let report ~enclave ~user_data =
  let body =
    Printf.sprintf "measurement=%s;user=%s"
      (Occlum_util.Sha256.to_hex (Enclave.measurement enclave))
      user_data
  in
  { body; tag = Occlum_util.Hmac.mac ~key:platform_key body }

let verify r = Occlum_util.Hmac.verify ~key:platform_key ~tag:r.tag r.body

(* Mutual attestation: both sides exchange reports and derive a shared
   session key for the encrypted channel between their enclaves. Real
   work (four HMAC computations + key derivation) so the handshake has
   honest cost in benchmarks. *)
let handshake ~parent ~child ~nonce =
  let r1 = report ~enclave:parent ~user_data:nonce in
  let r2 = report ~enclave:child ~user_data:nonce in
  if not (verify r1 && verify r2) then Error "attestation report rejected"
  else
    Ok
      (Occlum_util.Sha256.digest
         (String.concat "|" [ "session"; r1.tag; r2.tag; nonce ]))
