(** Local attestation (EREPORT/EGETKEY flow): what an EIP creation must
    do between parent and child enclaves before the encrypted
    process-state transfer (§3.2). *)

type report = { body : string; tag : string }

val report : enclave:Enclave.t -> user_data:string -> report
(** A MAC over the enclave's measurement plus caller data, keyed by the
    (simulated) platform fuse key. *)

val verify : report -> bool

val handshake :
  parent:Enclave.t -> child:Enclave.t -> nonce:string -> (string, string) result
(** Mutual attestation; on success returns a derived 32-byte session key
    for the encrypted channel between the enclaves. *)
