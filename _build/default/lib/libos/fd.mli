(** File descriptors. Entries are shared structures: a spawned child
    inherits its parent's open file table "with minimal overhead" (§6)
    by sharing the very same entry objects — possible only because all
    SIPs live inside one LibOS instance. *)

type pipe = {
  ring : Ring.t;
  mutable readers : int;  (** live reader entries *)
  mutable writers : int;
}

type kind =
  | File of { node : Sefs.inode; mutable pos : int; append : bool; writable : bool }
  | Pipe_r of pipe
  | Pipe_w of pipe
  | Sock of { mutable ep : Net.endpoint option; mutable port : int }
  | Listener of Net.listener
  | Dev_null
  | Dev_zero
  | Dev_random of Occlum_util.Prng.t
  | Console of { err : bool }
  | Proc_file of { content : string; mutable pos : int }

type entry = { mutable refs : int; kind : kind }

val release : entry -> unit
(** Drop one reference; the last one updates pipe reader/writer counts
    and closes socket endpoints. *)

type table

val create : unit -> table
val find : table -> int -> entry option
val install : table -> entry -> int
(** Install at the lowest free descriptor. *)

val install_at : table -> int -> entry -> unit
val close : table -> int -> (unit, int) result
val close_all : table -> unit

val inherit_from : table -> table
(** The child's table: same entries, bumped refcounts. *)

val dup2 : table -> src:int -> dst:int -> (int, int) result
