lib/libos/ring.ml: Bytes
