lib/libos/sefs.ml: Array Buffer Bytes Char Hashtbl List Occlum_abi Occlum_util Option Printf Result String
