lib/libos/domain_mgr.ml: Array Mem Occlum_machine Occlum_oelf Occlum_sgx Occlum_util
