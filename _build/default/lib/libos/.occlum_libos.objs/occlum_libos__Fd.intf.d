lib/libos/fd.mli: Net Occlum_util Ring Sefs
