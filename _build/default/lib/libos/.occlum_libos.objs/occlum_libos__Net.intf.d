lib/libos/net.mli: Bytes Hashtbl Ring
