lib/libos/domain_mgr.mli: Occlum_sgx
