lib/libos/loader.ml: Array Bytes Char Codec Cpu Domain_mgr Insn Int32 Int64 List Mem Occlum_isa Occlum_machine Occlum_oelf Occlum_sgx Occlum_toolchain Occlum_util Occlum_verifier Printf Reg String
