lib/libos/os.mli: Buffer Bytes Cpu Domain_mgr Fault Fd Hashtbl Loader Mem Net Occlum_machine Occlum_oelf Occlum_sgx Occlum_util Sefs
