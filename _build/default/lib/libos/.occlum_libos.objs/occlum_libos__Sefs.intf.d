lib/libos/sefs.mli: Bytes Hashtbl
