lib/libos/ring.mli: Bytes
