lib/libos/loader.mli: Bytes Domain_mgr Occlum_machine Occlum_oelf Occlum_sgx
