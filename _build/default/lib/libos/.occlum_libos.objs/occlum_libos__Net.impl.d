lib/libos/net.ml: Buffer Bytes Hashtbl List Occlum_abi Ring
