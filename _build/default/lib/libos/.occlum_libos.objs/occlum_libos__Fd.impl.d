lib/libos/fd.ml: List Net Occlum_abi Occlum_util Ring Sefs
