(* MMDSFI domain slots inside the enclave (§6 "Memory management").

   SGX1 cannot add, remove or re-permission enclave pages after EINIT, so
   the LibOS preallocates a fixed number of domain slots when the enclave
   is built. Each slot is the Figure-2a layout:

       [ C: code, RWX ][ G1: unmapped ][ D: data, RW ][ G2: unmapped ]

   Code pages must carry RWX because the loader writes binaries into
   them at runtime; MMDSFI (not hardware) is what keeps SIPs from
   writing code — see the code-injection analysis in §7. *)

open Occlum_machine

let guard = Occlum_oelf.Oelf.guard_size

type slot = {
  id : int;
  base : int;            (* absolute address of C *)
  code_size : int;
  data_size : int;
  mutable in_use : bool;
  mutable scrub_needed : bool; (* a previous SIP ran here *)
  mutable mapped : (int * int) list; (* SGX2: dynamically committed ranges *)
}

let c_base s = s.base
let d_base s = s.base + s.code_size + guard

type config = {
  max_domains : int;
  domain_code_size : int; (* bytes, page multiple *)
  domain_data_size : int;
}

let default_config =
  { max_domains = 16; domain_code_size = 256 * 1024;
    domain_data_size = 1024 * 1024 }

let slot_stride cfg = cfg.domain_code_size + guard + cfg.domain_data_size + guard

let domains_base = 0x10000 (* LibOS-reserved low pages *)

let enclave_size cfg =
  Occlum_util.Bytes_util.round_up
    (domains_base + (cfg.max_domains * slot_stride cfg))
    4096

type t = { cfg : config; slots : slot array }

(* Carve the slots out of a building enclave. On SGX1 every page is
   mapped now (pre-EINIT, §6 "Memory management"); on SGX2 the address
   space is only reserved and the loader EAUGs pages per binary. *)
let build cfg (enclave : Occlum_sgx.Enclave.t) =
  let dynamic = Occlum_sgx.Enclave.version enclave = Occlum_sgx.Enclave.Sgx2 in
  let slots =
    Array.init cfg.max_domains (fun i ->
        let base = domains_base + (i * slot_stride cfg) in
        if not dynamic then begin
          Occlum_sgx.Enclave.add_zero_pages enclave ~addr:base
            ~len:cfg.domain_code_size ~perm:Mem.perm_rwx;
          Occlum_sgx.Enclave.add_zero_pages enclave
            ~addr:(base + cfg.domain_code_size + guard)
            ~len:cfg.domain_data_size ~perm:Mem.perm_rw
        end;
        { id = i + 1; base; code_size = cfg.domain_code_size;
          data_size = cfg.domain_data_size; in_use = false;
          scrub_needed = false; mapped = [] })
  in
  { cfg; slots }

let acquire t =
  match Array.find_opt (fun s -> not s.in_use) t.slots with
  | None -> None
  | Some s ->
      s.in_use <- true;
      Some s

let release s =
  s.in_use <- false;
  s.scrub_needed <- true

let in_use_count t =
  Array.fold_left (fun acc s -> if s.in_use then acc + 1 else acc) 0 t.slots
