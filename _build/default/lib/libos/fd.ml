(* File descriptors. Entries are shared structures: a spawned child
   inherits its parent's open file table "with minimal overhead" (§6) by
   sharing the very same entry objects — possible only because all SIPs
   live inside one LibOS instance. *)

type pipe = {
  ring : Ring.t;
  mutable readers : int; (* live reader entries *)
  mutable writers : int;
}

type kind =
  | File of { node : Sefs.inode; mutable pos : int; append : bool; writable : bool }
  | Pipe_r of pipe
  | Pipe_w of pipe
  | Sock of { mutable ep : Net.endpoint option; mutable port : int }
  | Listener of Net.listener
  | Dev_null
  | Dev_zero
  | Dev_random of Occlum_util.Prng.t
  | Console of { err : bool }
  | Proc_file of { content : string; mutable pos : int }

type entry = { mutable refs : int; kind : kind }

let release entry =
  entry.refs <- entry.refs - 1;
  if entry.refs = 0 then
    match entry.kind with
    | Pipe_r p -> p.readers <- p.readers - 1
    | Pipe_w p -> p.writers <- p.writers - 1
    | Sock { ep = Some e; _ } -> Net.close_endpoint e
    | File _ | Sock { ep = None; _ } | Listener _ | Dev_null | Dev_zero
    | Dev_random _ | Console _ | Proc_file _ ->
        ()

type table = { mutable slots : (int * entry) list }

let create () = { slots = [] }

let find t fd = List.assoc_opt fd t.slots

let next_free t =
  let rec go n = if List.mem_assoc n t.slots then go (n + 1) else n in
  go 0

let install t entry =
  let fd = next_free t in
  t.slots <- (fd, entry) :: t.slots;
  fd

let install_at t fd entry = t.slots <- (fd, entry) :: List.remove_assoc fd t.slots

let close t fd =
  match find t fd with
  | None -> Error Occlum_abi.Abi.Errno.ebadf
  | Some e ->
      t.slots <- List.remove_assoc fd t.slots;
      release e;
      Ok ()

let close_all t =
  List.iter (fun (_, e) -> release e) t.slots;
  t.slots <- []

(* Child inheritance: same entries, bumped refcounts. *)
let inherit_from parent =
  let slots = List.map (fun (fd, e) -> e.refs <- e.refs + 1; (fd, e)) parent.slots in
  { slots }

let dup2 t ~src ~dst =
  match find t src with
  | None -> Error Occlum_abi.Abi.Errno.ebadf
  | Some e ->
      (match find t dst with
      | Some old when old != e ->
          t.slots <- List.remove_assoc dst t.slots;
          release old
      | _ -> ());
      if src <> dst then begin
        e.refs <- e.refs + 1;
        install_at t dst e
      end;
      Ok dst
