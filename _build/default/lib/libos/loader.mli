(** The Occlum ELF loader (§6). Beyond a classic loader it: (1) admits
    only verifier-signed binaries; (2) rewrites every cfi_label's id to
    the SIP's domain id; (3) injects the syscall trampoline — the only
    way out of the MMDSFI sandbox — and hands its address to [_start];
    (4) computes the MPX bound-register values for the domain. *)

exception Load_error of string

val main_gate_off : int
val sigreturn_gate_off : int
val thread_exit_gate_off : int

type image = {
  slot : Domain_mgr.slot;
  oelf : Occlum_oelf.Oelf.t;
  entry_pc : int;
  init_sp : int;
  bnd0 : Occlum_machine.Cpu.bound;  (** the domain's data-region range *)
  bnd1 : Occlum_machine.Cpu.bound;  (** [label_value, label_value] *)
  main_gate : int;        (** pc of the syscall gate instruction *)
  sigreturn_gate : int;
  thread_exit_gate : int;
  label_value : int64;    (** this domain's 8-byte cfi_label encoding *)
}

val cfi_label_value : int -> int64

val patch_labels : Bytes.t -> int -> unit
(** Rewrite the id field of every cfi_label in a code image. *)

val load :
  ?require_signature:bool ->
  ?dynamic:Occlum_sgx.Enclave.t ->
  Occlum_machine.Mem.t ->
  Domain_mgr.slot ->
  Occlum_oelf.Oelf.t ->
  args:string list ->
  image
(** Scrub the slot if needed (SGX1), or EAUG exactly the pages the
    binary needs ([dynamic] = the SGX2 enclave), place code (with
    trampoline) and data (with argv), and describe the initial machine
    state. @raise Load_error on bad signature or an oversized binary. *)

val init_cpu : image -> Occlum_machine.Cpu.t -> unit
(** Set pc/sp/base registers/bounds for the SIP's first thread. *)
