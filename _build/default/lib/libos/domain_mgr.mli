(** MMDSFI domain slots inside the enclave (§6). SGX1 cannot change
    enclave pages after EINIT, so a fixed number of Figure-2a layouts —
    [C (rwx) | guard | D (rw) | guard] — is preallocated when the
    enclave is built. *)

type slot = {
  id : int;               (** the domain id patched into cfi_labels *)
  base : int;             (** absolute address of the code region *)
  code_size : int;
  data_size : int;
  mutable in_use : bool;
  mutable scrub_needed : bool;  (** a previous SIP ran here *)
  mutable mapped : (int * int) list;  (** SGX2: dynamically committed ranges *)
}

val c_base : slot -> int
val d_base : slot -> int

type config = {
  max_domains : int;
  domain_code_size : int;
  domain_data_size : int;
}

val default_config : config
val slot_stride : config -> int
val domains_base : int
val enclave_size : config -> int

type t = { cfg : config; slots : slot array }

val build : config -> Occlum_sgx.Enclave.t -> t
(** Carve the slots out of a building (pre-EINIT) enclave. On SGX1 every
    page is mapped now; on SGX2 only the address space is reserved and
    the loader commits pages per binary. *)

val acquire : t -> slot option
val release : slot -> unit
val in_use_count : t -> int
