(* A bounded byte ring buffer: the kernel-side object behind pipes and
   loopback sockets. Because all SIPs share the LibOS's address space,
   IPC is a plain copy through this buffer — no encryption, no enclave
   exit — which is the SIP IPC advantage of Table 1. *)

type t = {
  buf : Bytes.t;
  mutable rpos : int;
  mutable len : int;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Ring.create";
  { buf = Bytes.create capacity; rpos = 0; len = 0 }

let capacity t = Bytes.length t.buf
let length t = t.len
let free_space t = capacity t - t.len
let is_empty t = t.len = 0

(* Write as much of [src] as fits; returns bytes consumed. *)
let write t src off len =
  let n = min len (free_space t) in
  let cap = capacity t in
  for k = 0 to n - 1 do
    Bytes.set t.buf ((t.rpos + t.len + k) mod cap) (Bytes.get src (off + k))
  done;
  t.len <- t.len + n;
  n

(* Read up to [len] bytes into [dst]; returns bytes produced. *)
let read t dst off len =
  let n = min len t.len in
  let cap = capacity t in
  for k = 0 to n - 1 do
    Bytes.set dst (off + k) (Bytes.get t.buf ((t.rpos + k) mod cap))
  done;
  t.rpos <- (t.rpos + n) mod cap;
  t.len <- t.len - n;
  n
