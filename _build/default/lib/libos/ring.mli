(** A bounded byte ring buffer: the kernel-side object behind pipes and
    loopback sockets. Because all SIPs share the LibOS address space, IPC
    is a plain copy through this buffer — no encryption, no enclave exit
    (Table 1). *)

type t

val create : int -> t
val capacity : t -> int
val length : t -> int
val free_space : t -> int
val is_empty : t -> bool

val write : t -> Bytes.t -> int -> int -> int
(** [write t src off len] copies in as much as fits; returns the count. *)

val read : t -> Bytes.t -> int -> int -> int
(** [read t dst off len] copies out up to [len]; returns the count. *)
