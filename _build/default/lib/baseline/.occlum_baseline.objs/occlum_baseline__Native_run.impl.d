lib/baseline/native_run.ml: Buffer Bytes Codec Cpu Fault Insn Int64 Interp List Mem Occlum_abi Occlum_isa Occlum_machine Occlum_oelf Occlum_toolchain Occlum_util Reg String
