lib/baseline/native_run.mli: Occlum_machine Occlum_oelf
