(** Bare-metal runner: executes an OELF image on the simulated machine
    with no enclave, verifier or LibOS — the "native Linux process" model,
    and the harness for the Figure-7 CPU benchmarks. *)

type result = {
  exit_code : int64;
  stdout : string;
  cycles : int;
  insns : int;
  loads : int;
  stores : int;
  bound_checks : int;
}

exception Runtime_fault of Occlum_machine.Fault.t

val code_base : int

val run :
  ?fuel:int ->
  ?args:string list ->
  ?nx:bool ->
  Occlum_oelf.Oelf.t ->
  result
(** Load and run to exit. [nx:false] maps the data region RWX — the
    classic unprotected process the RIPE baseline assumes.
    @raise Runtime_fault on any machine fault. *)
