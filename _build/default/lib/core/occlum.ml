(* The Occlum system facade: the three components of Figure 1b wired
   together behind one small API.

       source (Occlang)
         |  Toolchain.build        compile + MMDSFI instrument + link
         v
       OELF binary
         |  Verifier.check        4-stage static verification + signing
         v
       signed OELF
         |  System.install        placed on the encrypted FS
         |  System.exec           spawned as an SFI-Isolated Process
         v
       running SIP inside the single enclave

   Everything here re-exports the underlying libraries, so advanced
   users can drop one level down at any point. *)

module Ast = Occlum_toolchain.Ast
module Runtime = Occlum_toolchain.Runtime
module Codegen = Occlum_toolchain.Codegen
module Compile = Occlum_toolchain.Compile
module Verify = Occlum_verifier.Verify
module Os = Occlum_libos.Os
module Oelf = Occlum_oelf.Oelf
module Abi = Occlum_abi.Abi

type error =
  | Compile_error of string
  | Rejected of Occlum_verifier.Verify.rejection list

let error_to_string = function
  | Compile_error m -> "compile error: " ^ m
  | Rejected rs ->
      "verifier rejected the binary:\n"
      ^ String.concat "\n"
          (List.map Occlum_verifier.Verify.rejection_to_string rs)

(* Compile an Occlang program with full MMDSFI instrumentation, verify
   it, and sign it — the complete trusted pipeline. *)
let build ?(config = Occlum_toolchain.Codegen.sfi) prog =
  match Occlum_toolchain.Compile.compile ~config prog with
  | exception Occlum_toolchain.Ast.Ill_formed m -> Error (Compile_error m)
  | exception Occlum_toolchain.Codegen.Codegen_error m -> Error (Compile_error m)
  | oelf, _stats -> (
      match Occlum_verifier.Verify.verify_and_sign oelf with
      | Ok signed -> Ok signed
      | Error rs -> Error (Rejected rs))

let build_exn ?config prog =
  match build ?config prog with
  | Ok o -> o
  | Error e -> invalid_arg (error_to_string e)

type t = { os : Occlum_libos.Os.t }

let boot ?config () = { os = Occlum_libos.Os.boot ?config () }
let os t = t.os

(* Install a signed binary at [path] on the encrypted FS. *)
let install t ~path signed = Occlum_libos.Os.install_binary t.os path signed

(* Compile + verify + install in one step. *)
let install_program ?config t ~path prog =
  Result.map (install t ~path) (build ?config prog)

let install_program_exn ?config t ~path prog =
  install t ~path (build_exn ?config prog)

type exec_result = {
  exit_code : int;
  stdout : string;      (* this process's console writes *)
  console : string;     (* everything written while it ran *)
  status : Occlum_libos.Os.run_status;
}

(* Spawn [path] with [args] and run the system until that process (and
   whatever it spawned) settles. *)
let exec ?(args = []) ?(max_steps = 2_000_000) t path =
  let pid = Occlum_libos.Os.spawn t.os ~parent_pid:0 ~path ~args in
  let status = Occlum_libos.Os.wait_pid_exit ~max_steps t.os pid in
  let exit_code =
    match Occlum_libos.Os.find_proc t.os pid with
    | Some p -> p.exit_code
    | None -> 0
  in
  {
    exit_code;
    stdout = Occlum_libos.Os.proc_output t.os pid;
    console = Occlum_libos.Os.console_output t.os;
    status;
  }

(* One-shot convenience: build, boot a fresh system, run, return output. *)
let run_program ?config ?(args = []) prog =
  match build ?config prog with
  | Error e -> Error e
  | Ok signed ->
      let t = boot () in
      install t ~path:"/bin/app" signed;
      Ok (exec ~args t "/bin/app")
