(** The Occlum system facade: the three components of Figure 1b wired
    together behind one small API.

    {v
    source (Occlang)
      |  build          compile + MMDSFI instrument + verify + sign
      v
    signed OELF binary
      |  install        placed on the encrypted FS
      |  exec           spawned as an SFI-Isolated Process
      v
    running SIP inside the single enclave
    v}

    The submodules re-export the underlying libraries so users can drop
    a level down at any point. *)

module Ast = Occlum_toolchain.Ast
module Runtime = Occlum_toolchain.Runtime
module Codegen = Occlum_toolchain.Codegen
module Compile = Occlum_toolchain.Compile
module Verify = Occlum_verifier.Verify
module Os = Occlum_libos.Os
module Oelf = Occlum_oelf.Oelf
module Abi = Occlum_abi.Abi

type error =
  | Compile_error of string
  | Rejected of Occlum_verifier.Verify.rejection list

val error_to_string : error -> string

val build :
  ?config:Occlum_toolchain.Codegen.config ->
  Occlum_toolchain.Ast.program ->
  (Occlum_oelf.Oelf.t, error) result
(** Compile with full MMDSFI instrumentation, verify, sign. *)

val build_exn :
  ?config:Occlum_toolchain.Codegen.config ->
  Occlum_toolchain.Ast.program ->
  Occlum_oelf.Oelf.t

type t
(** A booted system: one enclave, one LibOS instance. *)

val boot : ?config:Occlum_libos.Os.config -> unit -> t
val os : t -> Occlum_libos.Os.t

val install : t -> path:string -> Occlum_oelf.Oelf.t -> unit
(** Place a signed binary at [path] on the encrypted FS. *)

val install_program :
  ?config:Occlum_toolchain.Codegen.config ->
  t -> path:string -> Occlum_toolchain.Ast.program -> (unit, error) result

val install_program_exn :
  ?config:Occlum_toolchain.Codegen.config ->
  t -> path:string -> Occlum_toolchain.Ast.program -> unit

type exec_result = {
  exit_code : int;
  stdout : string;   (** this process's console writes *)
  console : string;  (** everything written while it ran *)
  status : Occlum_libos.Os.run_status;
}

val exec : ?args:string list -> ?max_steps:int -> t -> string -> exec_result
(** Spawn [path] as a SIP and run the system until it settles. *)

val run_program :
  ?config:Occlum_toolchain.Codegen.config ->
  ?args:string list ->
  Occlum_toolchain.Ast.program ->
  (exec_result, error) result
(** One-shot: build, boot a fresh system, run, return the output. *)
