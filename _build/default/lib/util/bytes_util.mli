(** Byte-level helpers for the encoder, binary format and verifier. *)

val hex_of_string : string -> string
val round_up : int -> int -> int
val is_aligned : int -> int -> bool

val find_all : needle:string -> Bytes.t -> int list
(** All (possibly overlapping) occurrence offsets of [needle], ascending.
    The verifier's byte-by-byte [cfi_label] scan. *)

val contains : needle:string -> Bytes.t -> bool
val take_prefix : int -> string -> string
