(* SplitMix64: a small deterministic PRNG for workload generation and
   property tests. Deterministic seeding keeps every benchmark and test
   reproducible run-to-run. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* mask to 62 bits so the Int64 -> int conversion stays non-negative *)
  let v = Int64.to_int (Int64.logand (next_int64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  b

let string t n = Bytes.unsafe_to_string (bytes t n)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))
