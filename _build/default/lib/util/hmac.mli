(** HMAC-SHA-256 (RFC 2104): binary signing and SEFS block integrity. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte authentication tag of [msg]. *)

val verify : key:string -> tag:string -> string -> bool
(** [verify ~key ~tag msg] checks [tag] in constant time. *)
