lib/util/hmac.mli:
