lib/util/cipher.mli: Bytes
