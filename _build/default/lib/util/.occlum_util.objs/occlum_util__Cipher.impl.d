lib/util/cipher.ml: Array Bytes Char Printf Sha256 String
