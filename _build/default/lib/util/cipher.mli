(** ChaCha20-style stream cipher: SEFS block encryption and EIP
    inter-enclave message encryption. XOR keystream, so encryption and
    decryption are the same operation. *)

val key_size : int
(** 32 bytes. *)

val nonce_size : int
(** 12 bytes. *)

val encrypt : key:string -> nonce:string -> string -> string
(** [encrypt ~key ~nonce data] en/decrypts [data].
    @raise Invalid_argument on wrong key or nonce size. *)

val encrypt_bytes : key:string -> nonce:string -> Bytes.t -> unit
(** In-place variant of {!encrypt}. *)

val derive_nonce : string -> int -> string
(** [derive_nonce tag index] is a deterministic per-context nonce. *)
