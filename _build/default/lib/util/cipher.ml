(* A ChaCha20-style stream cipher (RFC 8439 core, 20 rounds). This is the
   cost driver for everything the paper encrypts: SEFS blocks, EIP
   process-state transfer, and EIP inter-enclave IPC messages. Encryption
   is XOR with the keystream, so [encrypt] is its own inverse.

   Like {!Sha256}, the state lives in native ints masked to 32 bits to
   avoid Int32 boxing on the hot path. *)

let mask = 0xFFFFFFFF

let sigma0 = 0x61707865
let sigma1 = 0x3320646e
let sigma2 = 0x79622d32
let sigma3 = 0x6b206574

let[@inline] rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask

let[@inline] quarter st a b c d =
  let ga = Array.unsafe_get st a and gb = Array.unsafe_get st b in
  let gc = Array.unsafe_get st c and gd = Array.unsafe_get st d in
  let ga = (ga + gb) land mask in
  let gd = rotl (gd lxor ga) 16 in
  let gc = (gc + gd) land mask in
  let gb = rotl (gb lxor gc) 12 in
  let ga = (ga + gb) land mask in
  let gd = rotl (gd lxor ga) 8 in
  let gc = (gc + gd) land mask in
  let gb = rotl (gb lxor gc) 7 in
  Array.unsafe_set st a ga;
  Array.unsafe_set st b gb;
  Array.unsafe_set st c gc;
  Array.unsafe_set st d gd

let le32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let init = Array.make 16 0
let st = Array.make 16 0

let block ~key ~nonce ~counter out =
  init.(0) <- sigma0;
  init.(1) <- sigma1;
  init.(2) <- sigma2;
  init.(3) <- sigma3;
  for idx = 0 to 7 do
    init.(4 + idx) <- le32 key (idx * 4)
  done;
  init.(12) <- counter land mask;
  for idx = 0 to 2 do
    init.(13 + idx) <- le32 nonce (idx * 4)
  done;
  Array.blit init 0 st 0 16;
  for _round = 1 to 10 do
    quarter st 0 4 8 12;
    quarter st 1 5 9 13;
    quarter st 2 6 10 14;
    quarter st 3 7 11 15;
    quarter st 0 5 10 15;
    quarter st 1 6 11 12;
    quarter st 2 7 8 13;
    quarter st 3 4 9 14
  done;
  for idx = 0 to 15 do
    let v = (st.(idx) + init.(idx)) land mask in
    Bytes.unsafe_set out (idx * 4) (Char.unsafe_chr (v land 0xFF));
    Bytes.unsafe_set out ((idx * 4) + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
    Bytes.unsafe_set out ((idx * 4) + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
    Bytes.unsafe_set out ((idx * 4) + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))
  done

let key_size = 32
let nonce_size = 12

let check_sizes key nonce =
  if String.length key <> key_size then invalid_arg "Cipher: key must be 32 bytes";
  if String.length nonce <> nonce_size then invalid_arg "Cipher: nonce must be 12 bytes"

let encrypt_bytes ~key ~nonce data =
  check_sizes key nonce;
  let len = Bytes.length data in
  let ks = Bytes.create 64 in
  let counter = ref 0 in
  let pos = ref 0 in
  while !pos < len do
    block ~key ~nonce ~counter:!counter ks;
    incr counter;
    let n = min 64 (len - !pos) in
    for idx = 0 to n - 1 do
      Bytes.unsafe_set data (!pos + idx)
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get data (!pos + idx))
            lxor Char.code (Bytes.unsafe_get ks idx)))
    done;
    pos := !pos + n
  done

let encrypt ~key ~nonce data =
  let b = Bytes.of_string data in
  encrypt_bytes ~key ~nonce b;
  Bytes.unsafe_to_string b

let derive_nonce tag index =
  (* Deterministic 12-byte nonce from a context tag and a block index. *)
  let d = Sha256.digest (Printf.sprintf "%s:%d" tag index) in
  String.sub d 0 nonce_size
