(** SplitMix64 deterministic PRNG for workload generation. *)

type t

val create : int -> t
(** [create seed] is a generator with the given seed. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform-ish in [\[0, bound)]. Requires [bound > 0]. *)

val bool : t -> bool
val bytes : t -> int -> Bytes.t
val string : t -> int -> string

val pick : t -> 'a array -> 'a
(** [pick t arr] is a uniformly chosen element of non-empty [arr]. *)
