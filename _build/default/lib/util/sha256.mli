(** SHA-256 (FIPS 180-4). Used for enclave page measurement and as the
    hash underlying {!Hmac} signatures on verified binaries. *)

type ctx
(** Streaming hash state. *)

val init : unit -> ctx
(** [init ()] is a fresh hash state. *)

val feed_bytes : ctx -> Bytes.t -> int -> int -> unit
(** [feed_bytes ctx b off len] absorbs [len] bytes of [b] at [off]. *)

val feed : ctx -> string -> unit
(** [feed ctx s] absorbs all of [s]. *)

val finalize : ctx -> string
(** [finalize ctx] is the 32-byte digest. The context must not be reused. *)

val digest : string -> string
(** [digest s] is the 32-byte SHA-256 of [s]. *)

val digest_bytes : Bytes.t -> int -> int -> string
(** [digest_bytes b off len] hashes a byte slice. *)

val to_hex : string -> string
(** [to_hex d] renders a digest in lowercase hex. *)
