(* SHA-256 implemented from FIPS 180-4. Used for enclave measurement
   (EEXTEND hashes every enclave page) and as the compression function of
   HMAC signatures on verified binaries.

   The arithmetic uses native ints masked to 32 bits: OCaml Int32 values
   are boxed and an Int32-based implementation is an order of magnitude
   slower, which would distort every enclave-creation benchmark. *)

let mask = 0xFFFFFFFF

type ctx = {
  h : int array; (* 8 words of chaining state, 32-bit values in ints *)
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int64; (* total message length in bytes *)
}

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

let init () =
  {
    h =
      [|
        0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
        0x1f83d9ab; 0x5be0cd19;
      |];
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0L;
  }

let[@inline] rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

let w = Array.make 64 0

let compress ctx block off =
  for idx = 0 to 15 do
    w.(idx) <-
      (Char.code (Bytes.unsafe_get block (off + (idx * 4))) lsl 24)
      lor (Char.code (Bytes.unsafe_get block (off + (idx * 4) + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (off + (idx * 4) + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get block (off + (idx * 4) + 3))
  done;
  for idx = 16 to 63 do
    let x15 = Array.unsafe_get w (idx - 15) and x2 = Array.unsafe_get w (idx - 2) in
    let s0 = rotr x15 7 lxor rotr x15 18 lxor (x15 lsr 3) in
    let s1 = rotr x2 17 lxor rotr x2 19 lxor (x2 lsr 10) in
    Array.unsafe_set w idx
      ((Array.unsafe_get w (idx - 16) + s0 + Array.unsafe_get w (idx - 7) + s1)
       land mask)
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for idx = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = !e land !f lxor (lnot !e land mask land !g) in
    let temp1 =
      (!hh + s1 + ch + Array.unsafe_get k idx + Array.unsafe_get w idx) land mask
    in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = !a land !b lxor (!a land !c) lxor (!b land !c) in
    let temp2 = (s0 + maj) land mask in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + temp1) land mask;
    d := !c;
    c := !b;
    b := !a;
    a := (temp1 + temp2) land mask
  done;
  h.(0) <- (h.(0) + !a) land mask;
  h.(1) <- (h.(1) + !b) land mask;
  h.(2) <- (h.(2) + !c) land mask;
  h.(3) <- (h.(3) + !d) land mask;
  h.(4) <- (h.(4) + !e) land mask;
  h.(5) <- (h.(5) + !f) land mask;
  h.(6) <- (h.(6) + !g) land mask;
  h.(7) <- (h.(7) + !hh) land mask

let feed_bytes ctx data off len =
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let off = ref off and len = ref len in
  if ctx.buf_len > 0 then begin
    let need = min (64 - ctx.buf_len) !len in
    Bytes.blit data !off ctx.buf ctx.buf_len need;
    ctx.buf_len <- ctx.buf_len + need;
    off := !off + need;
    len := !len - need;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !len >= 64 do
    compress ctx data !off;
    off := !off + 64;
    len := !len - 64
  done;
  if !len > 0 then begin
    Bytes.blit data !off ctx.buf 0 !len;
    ctx.buf_len <- !len
  end

let feed ctx s = feed_bytes ctx (Bytes.unsafe_of_string s) 0 (String.length s)

let finalize ctx =
  let bit_len = Int64.mul ctx.total 8L in
  let pad_len =
    let r = (ctx.buf_len + 1 + 8) mod 64 in
    if r = 0 then 1 + 8 else 1 + 8 + (64 - r)
  in
  let pad = Bytes.make pad_len '\x00' in
  Bytes.set pad 0 '\x80';
  Bytes.set_int64_be pad (pad_len - 8) bit_len;
  feed_bytes ctx pad 0 pad_len;
  let out = Bytes.create 32 in
  for idx = 0 to 7 do
    Bytes.set_int32_be out (idx * 4) (Int32.of_int ctx.h.(idx))
  done;
  Bytes.unsafe_to_string out

let digest_bytes data off len =
  let ctx = init () in
  feed_bytes ctx data off len;
  finalize ctx

let digest s = digest_bytes (Bytes.unsafe_of_string s) 0 (String.length s)

let to_hex d =
  let b = Buffer.create (String.length d * 2) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents b
