(* Small byte-level helpers shared by the encoder, the binary format and
   the file system. *)

let hex_of_string s =
  let b = Buffer.create (String.length s * 2) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let round_up n align =
  if align <= 0 then invalid_arg "round_up: align must be positive";
  (n + align - 1) / align * align

let is_aligned n align = n mod align = 0

(* Find all occurrences of [needle] in [hay], including overlapping ones.
   Used by the verifier's byte-by-byte cfi_label scan (Algorithm 1, line 2). *)
let find_all ~needle hay =
  let nl = String.length needle and hl = Bytes.length hay in
  if nl = 0 then invalid_arg "find_all: empty needle";
  let rec scan i acc =
    if i + nl > hl then List.rev acc
    else
      let matches =
        let rec check j = j = nl || (Bytes.get hay (i + j) = needle.[j] && check (j + 1)) in
        check 0
      in
      scan (i + 1) (if matches then i :: acc else acc)
  in
  scan 0 []

(* Does [needle] occur anywhere in [hay]? *)
let contains ~needle hay = find_all ~needle hay <> []

let take_prefix n s = String.sub s 0 (min n (String.length s))
