(* HMAC-SHA-256 (RFC 2104). The Occlum verifier signs accepted binaries
   with an HMAC; the LibOS loader recomputes it before loading. SEFS uses
   it as the per-block integrity tag. *)

let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let padded = Bytes.make block_size '\x00' in
  Bytes.blit_string key 0 padded 0 (String.length key);
  padded

let mac ~key msg =
  let key = normalize_key key in
  let ipad = Bytes.map (fun c -> Char.chr (Char.code c lxor 0x36)) key in
  let opad = Bytes.map (fun c -> Char.chr (Char.code c lxor 0x5c)) key in
  let inner = Sha256.digest (Bytes.to_string ipad ^ msg) in
  Sha256.digest (Bytes.to_string opad ^ inner)

let verify ~key ~tag msg =
  let expected = mac ~key msg in
  (* constant-time comparison: accumulate the xor of all byte pairs *)
  String.length tag = String.length expected
  &&
  let acc = ref 0 in
  String.iteri
    (fun i c -> acc := !acc lor (Char.code c lxor Char.code expected.[i]))
    tag;
  !acc = 0
