(* occlum_run: boot the Occlum LibOS in a fresh simulated enclave,
   install the given signed binaries on the encrypted FS, spawn the first
   one and run the system to completion. *)

open Cmdliner

let run binaries args mode_name fs_image save_fs =
  let mode =
    match mode_name with
    | "sip" | "occlum" -> Occlum_libos.Os.Sip
    | "eip" | "graphene" -> Occlum_libos.Os.Eip
    | "linux" -> Occlum_libos.Os.Linux
    | other ->
        prerr_endline ("unknown mode: " ^ other ^ " (sip|eip|linux)");
        exit 2
  in
  if binaries = [] then begin
    prerr_endline "no binaries given";
    exit 2
  end;
  let config = { Occlum_libos.Os.default_config with mode } in
  let host_fs =
    match fs_image with
    | Some path when Sys.file_exists path ->
        Some (Occlum_libos.Sefs.Host_store.load path)
    | _ -> None
  in
  let os = Occlum_libos.Os.boot ~config ?host_fs () in
  let install path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    let oelf = Occlum_oelf.Oelf.of_string s in
    let name = "/bin/" ^ Filename.remove_extension (Filename.basename path) in
    Occlum_libos.Os.install_binary os name oelf;
    name
  in
  let names = List.map install binaries in
  let first = List.hd names in
  Printf.printf "booted (%s mode); installed: %s\nspawning %s %s\n---\n%!"
    mode_name (String.concat " " names) first (String.concat " " args);
  (match Occlum_libos.Os.spawn os ~parent_pid:0 ~path:first ~args with
  | exception Occlum_libos.Os.Spawn_error e ->
      Printf.eprintf "spawn failed: errno %d\n" e;
      exit 1
  | _pid -> ());
  let status = Occlum_libos.Os.run ~max_steps:50_000_000 os in
  print_string (Occlum_libos.Os.console_output os);
  Printf.printf "---\n%s; %d syscalls, %d spawns, vclock %Ld us\n"
    (match status with
    | Occlum_libos.Os.All_exited -> "all processes exited"
    | Occlum_libos.Os.Deadlock pids ->
        "DEADLOCK: pids "
        ^ String.concat "," (List.map string_of_int pids)
    | Occlum_libos.Os.Quota_exhausted -> "step quota exhausted")
    os.Occlum_libos.Os.syscalls os.Occlum_libos.Os.spawns
    (Int64.div (Occlum_libos.Os.clock os) 1000L);
  List.iter
    (fun (pid, f) ->
      Printf.printf "fault: pid %d: %s\n" pid (Occlum_machine.Fault.to_string f))
    os.Occlum_libos.Os.faults;
  match save_fs with
  | None -> ()
  | Some path ->
      Occlum_libos.Os.flush_fs os;
      Occlum_libos.Sefs.Host_store.save os.Occlum_libos.Os.sefs.Occlum_libos.Sefs.host path;
      Printf.printf "file system saved to %s\n" path

let binaries_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"BINARY.oelf...")

let args_arg =
  Arg.(value & opt_all string [] & info [ "a"; "arg" ]
         ~doc:"Argument passed to the first binary (repeatable).")

let mode_arg =
  Arg.(value & opt string "sip" & info [ "m"; "mode" ]
         ~doc:"Execution model: sip (Occlum), eip (Graphene-SGX), linux.")

let fs_arg =
  Arg.(value & opt (some string) None & info [ "fs" ]
         ~doc:"Boot over an existing encrypted FS image (see occlum_sefs).")

let save_fs_arg =
  Arg.(value & opt (some string) None & info [ "save-fs" ]
         ~doc:"Flush and save the encrypted FS image on shutdown.")

let cmd =
  Cmd.v
    (Cmd.info "occlum_run" ~doc:"Run OELF binaries on the Occlum LibOS")
    Term.(const run $ binaries_arg $ args_arg $ mode_arg $ fs_arg $ save_fs_arg)

let () = exit (Cmd.eval cmd)
