(* occlum_sefs: the host-side utility for preparing and inspecting
   Occlum encrypted file-system images (the paper's FUSE-based tool,
   §8). The image file holds only ciphertext and MACs; every operation
   that touches plaintext needs the volume key.

     occlum_sefs create -i img.sefs
     occlum_sefs add -i img.sefs --from host.bin --to /bin/app
     occlum_sefs mkdir -i img.sefs /data
     occlum_sefs ls -i img.sefs /
     occlum_sefs cat -i img.sefs /data/file
     occlum_sefs tamper -i img.sefs --block 0     (for integrity demos) *)

open Cmdliner
module Sefs = Occlum_libos.Sefs

let default_key = "occlum-fs-master-key"

let mount_image image key =
  if Sys.file_exists image then Sefs.mount ~key (Sefs.Host_store.load image)
  else Sefs.create ~key ()

let save fs image =
  Sefs.flush fs;
  Sefs.Host_store.save fs.Sefs.host image

let errno_fail e = Printf.eprintf "error: errno %d\n" e; exit 1

let create_cmd =
  let run image key =
    save (Sefs.create ~key ()) image;
    Printf.printf "created empty encrypted image %s\n" image
  in
  Cmd.v (Cmd.info "create" ~doc:"Create an empty encrypted image")
    Term.(
      const run
      $ Arg.(required & opt (some string) None & info [ "i"; "image" ])
      $ Arg.(value & opt string default_key & info [ "k"; "key" ]))

let add_cmd =
  let run image key from to_ =
    let fs = mount_image image key in
    let ic = open_in_bin from in
    let content = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sefs.ensure_parents fs to_;
    (match Sefs.write_path fs to_ content with
    | Ok _ -> ()
    | Error e -> errno_fail e);
    save fs image;
    Printf.printf "%s -> %s (%d bytes, encrypted)\n" from to_ (String.length content)
  in
  Cmd.v (Cmd.info "add" ~doc:"Encrypt a host file into the image")
    Term.(
      const run
      $ Arg.(required & opt (some string) None & info [ "i"; "image" ])
      $ Arg.(value & opt string default_key & info [ "k"; "key" ])
      $ Arg.(required & opt (some file) None & info [ "from" ])
      $ Arg.(required & opt (some string) None & info [ "to" ]))

let mkdir_cmd =
  let run image key path =
    let fs = mount_image image key in
    Sefs.ensure_parents fs (path ^ "/x");
    save fs image;
    Printf.printf "mkdir -p %s\n" path
  in
  Cmd.v (Cmd.info "mkdir" ~doc:"Create a directory (with parents)")
    Term.(
      const run
      $ Arg.(required & opt (some string) None & info [ "i"; "image" ])
      $ Arg.(value & opt string default_key & info [ "k"; "key" ])
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH"))

let ls_cmd =
  let run image key path =
    let fs = mount_image image key in
    match Sefs.readdir fs path with
    | Ok names ->
        List.iter
          (fun n ->
            let full = (if path = "/" then "" else path) ^ "/" ^ n in
            match Sefs.lookup fs full with
            | Some node when node.Sefs.kind = Sefs.Dir ->
                Printf.printf "d %8s %s/\n" "-" n
            | Some node -> Printf.printf "f %8d %s\n" node.Sefs.size n
            | None -> Printf.printf "? %8s %s\n" "-" n)
          names
    | Error e -> errno_fail e
  in
  Cmd.v (Cmd.info "ls" ~doc:"List a directory")
    Term.(
      const run
      $ Arg.(required & opt (some string) None & info [ "i"; "image" ])
      $ Arg.(value & opt string default_key & info [ "k"; "key" ])
      $ Arg.(value & pos 0 string "/" & info [] ~docv:"PATH"))

let cat_cmd =
  let run image key path =
    let fs = mount_image image key in
    match Sefs.read_path fs path with
    | Ok s -> print_string s
    | Error e -> errno_fail e
  in
  Cmd.v (Cmd.info "cat" ~doc:"Decrypt and print a file")
    Term.(
      const run
      $ Arg.(required & opt (some string) None & info [ "i"; "image" ])
      $ Arg.(value & opt string default_key & info [ "k"; "key" ])
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH"))

let tamper_cmd =
  let run image block =
    (* deliberately key-less: the attack a malicious host mounts *)
    let host = Sefs.Host_store.load image in
    if Sefs.Host_store.tamper host block then begin
      Sefs.Host_store.save host image;
      Printf.printf "flipped one bit of ciphertext block %d\n" block
    end
    else begin
      Printf.eprintf "no such block %d\n" block;
      exit 1
    end
  in
  Cmd.v (Cmd.info "tamper" ~doc:"Flip a ciphertext bit (integrity demo)")
    Term.(
      const run
      $ Arg.(required & opt (some string) None & info [ "i"; "image" ])
      $ Arg.(value & opt int 0 & info [ "b"; "block" ]))

let cmd =
  Cmd.group
    (Cmd.info "occlum_sefs"
       ~doc:"Prepare and inspect Occlum encrypted FS images on the host")
    [ create_cmd; add_cmd; mkdir_cmd; ls_cmd; cat_cmd; tamper_cmd ]

let () = exit (Cmd.eval cmd)
