(* occlum_cc: the Occlum toolchain driver. Compiles an Occlang source
   file into an OELF binary with MMDSFI instrumentation, optionally
   verifying and signing it in the same run (like the paper's
   occlum-gcc wrapper around the patched LLVM). *)

open Cmdliner

let compile input output config_name verify listing =
  let config =
    match config_name with
    | "sfi" -> Occlum_toolchain.Codegen.sfi
    | "naive" -> Occlum_toolchain.Codegen.sfi_naive
    | "bare" -> Occlum_toolchain.Codegen.bare
    | other ->
        prerr_endline ("unknown config: " ^ other ^ " (sfi|naive|bare)");
        exit 2
  in
  match Occlum_toolchain.Parser.parse_file input with
  | exception Occlum_toolchain.Parser.Parse_error m ->
      prerr_endline ("parse error: " ^ m);
      exit 1
  | exception Sys_error m ->
      prerr_endline m;
      exit 1
  | prog -> (
      if listing then print_endline (Occlum_toolchain.Compile.listing ~config prog);
      match Occlum_toolchain.Compile.compile ~config prog with
      | exception Occlum_toolchain.Ast.Ill_formed m ->
          prerr_endline ("error: " ^ m);
          exit 1
      | exception Occlum_toolchain.Codegen.Codegen_error m ->
          prerr_endline ("error: " ^ m);
          exit 1
      | oelf, stats ->
          let oelf =
            if verify && config_name <> "bare" then
              match Occlum_verifier.Verify.verify_and_sign oelf with
              | Ok signed -> signed
              | Error rs ->
                  prerr_endline "verification failed:";
                  List.iter
                    (fun r ->
                      prerr_endline
                        ("  " ^ Occlum_verifier.Verify.rejection_to_string r))
                    rs;
                  exit 1
            else oelf
          in
          let oc = open_out_bin output in
          output_string oc (Occlum_oelf.Oelf.to_string oelf);
          close_out oc;
          Printf.printf
            "%s: %d bytes code, %d bytes data, %d guards (%d before \
             optimization)%s\n"
            output
            (Bytes.length oelf.Occlum_oelf.Oelf.code)
            (Bytes.length oelf.Occlum_oelf.Oelf.data)
            stats.Occlum_toolchain.Compile.guards_after_opt
            stats.guards_before_opt
            (if oelf.signature <> None then ", verified and signed" else ""))

let input_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.ol")

let output_arg =
  Arg.(value & opt string "a.oelf" & info [ "o"; "output" ] ~docv:"OUTPUT")

let config_arg =
  Arg.(value & opt string "sfi" & info [ "c"; "config" ]
         ~doc:"Instrumentation: sfi (optimized, default), naive, or bare.")

let verify_arg =
  Arg.(value & flag & info [ "verify" ] ~doc:"Verify and sign the output.")

let listing_arg =
  Arg.(value & flag & info [ "S"; "listing" ] ~doc:"Print the assembly listing.")

let cmd =
  Cmd.v
    (Cmd.info "occlum_cc" ~doc:"Occlum toolchain: compile Occlang to OELF")
    Term.(const compile $ input_arg $ output_arg $ config_arg $ verify_arg
          $ listing_arg)

let () = exit (Cmd.eval cmd)
