bin/occlum_run.mli:
