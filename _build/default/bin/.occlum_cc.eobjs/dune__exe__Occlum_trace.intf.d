bin/occlum_trace.mli:
