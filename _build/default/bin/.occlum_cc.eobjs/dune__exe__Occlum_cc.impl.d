bin/occlum_cc.ml: Arg Bytes Cmd Cmdliner List Occlum_oelf Occlum_toolchain Occlum_verifier Printf Term
