bin/occlum_sefs.mli:
