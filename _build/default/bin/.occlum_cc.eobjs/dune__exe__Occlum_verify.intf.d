bin/occlum_verify.mli:
