bin/occlum_cc.mli:
