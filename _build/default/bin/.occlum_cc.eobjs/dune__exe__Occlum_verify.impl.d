bin/occlum_verify.ml: Arg Array Cmd Cmdliner List Occlum_oelf Occlum_verifier Printf Term
