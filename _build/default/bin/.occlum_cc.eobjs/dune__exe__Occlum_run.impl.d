bin/occlum_run.ml: Arg Cmd Cmdliner Filename Int64 List Occlum_libos Occlum_machine Occlum_oelf Printf String Sys Term
