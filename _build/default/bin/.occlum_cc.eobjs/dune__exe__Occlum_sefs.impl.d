bin/occlum_sefs.ml: Arg Cmd Cmdliner List Occlum_libos Printf String Sys Term
