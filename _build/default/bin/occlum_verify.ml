(* occlum_verify: the independent Occlum verifier as a standalone tool.
   Reads an OELF binary, runs the four verification stages of §5, and on
   success emits the signed binary. *)

open Cmdliner

let verify input output disasm =
  let read_oelf path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Occlum_oelf.Oelf.of_string s
  in
  match read_oelf input with
  | exception Occlum_oelf.Oelf.Malformed m ->
      prerr_endline ("malformed OELF: " ^ m);
      exit 1
  | exception Sys_error m ->
      prerr_endline m;
      exit 1
  | oelf -> (
      match Occlum_verifier.Verify.verify oelf with
      | Ok d ->
          Printf.printf "%s: VERIFIED (%d instructions, %d cfi_labels)\n" input
            (Array.length d.Occlum_verifier.Disasm.sorted)
            (List.length d.Occlum_verifier.Disasm.labels);
          if disasm then print_endline (Occlum_verifier.Disasm.listing d);
          (match output with
          | None -> ()
          | Some out ->
              let signed = Occlum_verifier.Signer.sign oelf in
              let oc = open_out_bin out in
              output_string oc (Occlum_oelf.Oelf.to_string signed);
              close_out oc;
              Printf.printf "signed binary written to %s\n" out)
      | Error rs ->
          Printf.printf "%s: REJECTED\n" input;
          List.iter
            (fun r ->
              print_endline ("  " ^ Occlum_verifier.Verify.rejection_to_string r))
            rs;
          exit 1)

let input_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.oelf")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "sign" ]
         ~doc:"Write the signed binary here on success.")

let disasm_arg =
  Arg.(value & flag & info [ "d"; "disasm" ] ~doc:"Print the disassembly.")

let cmd =
  Cmd.v
    (Cmd.info "occlum_verify"
       ~doc:"Occlum verifier: check MMDSFI compliance of an OELF binary")
    Term.(const verify $ input_arg $ output_arg $ disasm_arg)

let () = exit (Cmd.eval cmd)
